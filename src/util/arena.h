// Epoch arena and freelist pool: the allocation substrate for the
// data-oriented netsim core.
//
// Two allocators with deliberately different lifetime models:
//
//  - Arena: a chunked bump allocator for objects that all die together.
//    allocate() is a pointer bump; there is no per-object free.  reset()
//    ends the epoch: every allocation is dropped at once and the chunks
//    are retained for the next epoch, so a steady-state
//    build/reset/build cycle performs no heap traffic.  The route cache
//    uses one arena per topology version: BFS next-hop tables live
//    exactly as long as the topology they describe.
//
//  - Pool<T>: a slot pool handing out dense 32-bit index handles backed
//    by a freelist.  Handles survive vector growth (indices, not
//    pointers), slots are recycled in LIFO order so hot slots stay hot,
//    and T's capacity (e.g. a Bytes buffer) is retained across
//    acquire/release cycles.  Everything in-flight in the simulator —
//    packets, shared route paths — is referred to by pool handles, not
//    heap nodes.
//
// Neither allocator is thread-safe: simulations are single-threaded and
// deterministic by design (see util/ids.h).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace lexfor::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes) noexcept
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Returns `bytes` of storage aligned to `align` (a power of two).
  // Never returns nullptr; allocations larger than the chunk size get a
  // dedicated chunk.  The returned ADDRESS is aligned, not merely the
  // offset into the chunk: alignments above what operator new[] grants
  // (typically 16) are honoured, which is what the SIMD despread lane
  // relies on for its 64-byte chip/window buffers.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (chunk_ < chunks_.size()) {
      const auto base =
          reinterpret_cast<std::uintptr_t>(chunks_[chunk_].data.get());
      const std::size_t aligned =
          ((base + used_ + (align - 1)) & ~(align - 1)) - base;
      if (aligned + bytes <= chunks_[chunk_].size) {
        used_ = aligned + bytes;
        total_allocated_ += bytes;
        return chunks_[chunk_].data.get() + aligned;
      }
    }
    return allocate_slow(bytes, align);
  }

  // Explicit over-aligned allocation: `align` may exceed
  // alignof(std::max_align_t) (e.g. 64 for a cache line, so a SIMD lane
  // never straddles one).  Same contract as allocate() — this alias
  // exists so call sites that REQUIRE the over-alignment say so.
  [[nodiscard]] void* allocate_aligned(std::size_t bytes, std::size_t align) {
    return allocate(bytes, align);
  }

  // Typed over-aligned array: n elements of T starting on an `align`
  // boundary (align >= alignof(T), power of two).  Uninitialized, like
  // alloc_array.
  template <typename T>
  [[nodiscard]] T* alloc_array_aligned(std::size_t n, std::size_t align) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(
        allocate_aligned(n * sizeof(T), align < alignof(T) ? alignof(T)
                                                           : align));
  }

  // Typed array allocation.  Value-initializes nothing: callers fill the
  // array themselves.  T must be trivially destructible — the arena
  // never runs destructors.
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  // Ends the epoch: all allocations are invalidated at once.  Chunks are
  // retained, so the next epoch allocates from warm memory.
  void reset() noexcept {
    chunk_ = 0;
    used_ = 0;
    total_allocated_ = 0;
  }

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }
  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return total_allocated_;
  }
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  [[nodiscard]] void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Advance to the next retained chunk that fits, or mint a new one.
    while (++chunk_ < chunks_.size()) {
      used_ = 0;
      if (bytes + align <= chunks_[chunk_].size) break;
    }
    if (chunk_ >= chunks_.size()) {
      const std::size_t size = bytes + align > chunk_bytes_ ? bytes + align
                                                            : chunk_bytes_;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
      chunk_ = chunks_.size() - 1;
      used_ = 0;
    }
    const auto base = reinterpret_cast<std::uintptr_t>(chunks_[chunk_].data.get());
    const std::size_t aligned =
        ((base + used_ + (align - 1)) & ~(align - 1)) - base;
    used_ = aligned + bytes;
    total_allocated_ += bytes;
    return chunks_[chunk_].data.get() + aligned;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;  // index of the chunk being bumped
  std::size_t used_ = 0;   // bytes consumed in the current chunk
  std::size_t total_allocated_ = 0;
};

// A freelist slot pool with 32-bit index handles.  Slots are default-
// constructed once and recycled; a released slot keeps its T (and thus
// any capacity T owns) until reacquired.
//
// Alignment guarantee: every slot sits on an alignof(T) boundary, for
// any T including over-aligned ones (alignas(64) SoA rows, SIMD
// scratch) — std::vector<T> allocates through the aligned operator new
// since C++17, and slots are contiguous multiples of sizeof(T) from
// that base.  Pinned by ArenaTest/PoolTest alignment tests.
template <typename T>
class Pool {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = ~Handle{0};

  // Acquires a slot (recycled LIFO, or freshly grown) and returns its
  // handle.  The slot holds whatever the previous occupant left behind;
  // callers overwrite the fields they use.
  [[nodiscard]] Handle acquire() {
    if (!free_.empty()) {
      const Handle h = free_.back();
      free_.pop_back();
      ++live_;
      return h;
    }
    slots_.emplace_back();
    ++live_;
    return static_cast<Handle>(slots_.size() - 1);
  }

  void release(Handle h) noexcept {
    free_.push_back(h);
    --live_;
  }

  [[nodiscard]] T& operator[](Handle h) noexcept { return slots_[h]; }
  [[nodiscard]] const T& operator[](Handle h) const noexcept {
    return slots_[h];
  }

  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<T> slots_;
  std::vector<Handle> free_;
  std::size_t live_ = 0;
};

}  // namespace lexfor::util
