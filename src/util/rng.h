// Deterministic pseudo-random number generation for simulations.
//
// All stochastic behaviour in LexForensica (network jitter, workload
// generation, overlay topology) flows through `Rng`, a xoshiro256**
// generator with explicit seeding, so every experiment is exactly
// reproducible from its seed.  `Rng` satisfies the C++
// UniformRandomBitGenerator requirements and can also be `split()` into
// independent child streams, which keeps module-local randomness stable
// when unrelated code adds or removes draws.

#pragma once

#include <cstdint>
#include <utility>

namespace lexfor {

class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the state via SplitMix64 so that even small seeds produce
  // well-mixed state (the xoshiro authors' recommended procedure).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  // Next raw 64-bit draw (xoshiro256**).
  result_type operator()() noexcept;

  // Uniform integer in [0, bound) using Lemire's unbiased method.
  // bound must be nonzero.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_in(std::int64_t lo,
                                        std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  // Bernoulli draw with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  // Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  // Standard-normal via Box-Muller (no cached spare: keeps state minimal
  // and draw counts predictable).
  [[nodiscard]] double normal(double mu, double sigma) noexcept;

  // Pareto (heavy-tailed) with scale xm > 0 and shape alpha > 0; used for
  // realistic flow-size and file-size workloads.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  // Geometric: number of failures before first success, p in (0,1].
  [[nodiscard]] std::uint64_t geometric(double p) noexcept;

  // Poisson with small-to-moderate mean (Knuth's method; adequate for
  // the arrival processes simulated here).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  // An independent child generator.  The child's stream does not overlap
  // the parent's continued use for any practical draw count.
  [[nodiscard]] Rng split() noexcept;

  // A counter-derived child stream: a generator identified by
  // (seed, stream) alone, with no parent state consumed.  Unlike
  // split(), stream k is the same generator no matter how many other
  // streams are derived, in what order, or on which thread — the
  // property that lets per-item simulation loops (one stream per flow)
  // be parallelized without changing any output.
  [[nodiscard]] static Rng sub_stream(std::uint64_t seed,
                                      std::uint64_t stream) noexcept;

  // Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace lexfor
