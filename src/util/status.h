// Status / Result: lightweight error propagation without exceptions.
//
// Library code in LexForensica reports expected failures (a denied
// warrant application, an out-of-scope capture request, a tampered
// chain of custody) as values, reserving exceptions for programming
// errors.  `Status` carries an error code plus a human-readable message;
// `Result<T>` is a Status or a value.

#pragma once

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace lexfor {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something nonsensical
  kNotFound,          // entity id does not resolve
  kFailedPrecondition,// operation not legal in current state
  kPermissionDenied,  // legal authority insufficient for the action
  kOutOfRange,        // index/time outside the valid window
  kAlreadyExists,     // duplicate registration
  kInternal,          // invariant violation (bug)
  kResourceExhausted, // bounded queue/buffer full; retry or shed
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status{}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    os << to_string(s.code_);
    if (!s.message_.empty()) os << ": " << s.message_;
    return os;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}

// A value or an error.  Accessing the value of an errored Result is a
// programming error and asserts.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from both arms keeps call sites readable:
  //   return some_value;          return NotFound("...");
  Result(T value) : data_(std::move(value)) {}          // NOLINT
  Result(Status status) : data_(std::move(status)) {    // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  // value_or: fall back when errored.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace lexfor
