#include "investigation/report.h"

#include <sstream>

namespace lexfor::investigation {

std::string suppression_report(const Investigation& inv) {
  std::ostringstream os;
  const auto audit = inv.admissibility_audit();
  os << "## Admissibility audit\n\n";
  os << "- admissible: " << audit.admissible_count << "\n";
  os << "- suppressed: " << audit.suppressed_count << "\n\n";
  for (const auto& f : audit.findings) {
    const auto* rec = inv.provenance().find(f.id);
    os << "- [" << (f.suppressed ? "SUPPRESSED" : "admissible") << "] "
       << "evidence #" << f.id.value();
    if (rec != nullptr) os << " (" << rec->description << ")";
    os << ": " << f.reason << "\n";
  }
  return os.str();
}

std::string case_report(const Investigation& inv) {
  std::ostringstream os;
  os << "# Case file: " << inv.title() << " (case #" << inv.id().value()
     << ")\n\n";

  os << "## Facts\n\n";
  if (inv.facts().empty()) {
    os << "(no facts on record)\n";
  } else {
    for (const auto& f : inv.facts()) {
      os << "- " << legal::to_string(f.kind) << ": " << f.description
         << " (age " << f.age_days << " days)\n";
    }
  }
  const auto standard = inv.current_standard();
  os << "\nAggregate standard of proof: **"
     << legal::to_string(standard.standard) << "**\n";
  for (const auto& note : standard.notes) os << "  - " << note << "\n";

  os << "\n## Process applications\n\n";
  if (inv.rulings().empty()) {
    os << "(none)\n";
  } else {
    for (const auto& r : inv.rulings()) {
      os << "- " << (r.granted ? "GRANTED" : "DENIED") << ": "
         << r.explanation;
      if (r.granted) {
        os << " [process #" << r.process.id.value() << ", issued at "
           << r.process.issued_at.seconds() << "s]";
      }
      os << "\n";
    }
  }

  os << "\n## Acquisitions\n\n";
  if (inv.provenance().records().empty()) {
    os << "(none)\n";
  } else {
    for (const auto& rec : inv.provenance().records()) {
      os << "- evidence #" << rec.id.value() << ": " << rec.description
         << " — required " << legal::to_string(rec.required) << ", held "
         << legal::to_string(rec.held)
         << (rec.directly_lawful() ? " (lawful)" : " (UNLAWFUL)");
      if (!rec.derived_from.empty()) {
        os << ", derived from";
        for (const auto p : rec.derived_from) os << " #" << p.value();
      }
      os << "\n";
    }
  }

  os << "\n" << suppression_report(inv);
  return os.str();
}

}  // namespace lexfor::investigation
