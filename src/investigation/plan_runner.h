// Executes an InvestigationPlan through the runtime.
//
// The lint IR and the runtime meet here: each planned application is
// adjudicated by the Court, each planned acquisition executes through
// Investigation::acquire under the instrument its application was
// granted (or no authority at all), and derivation edges are threaded
// into the provenance graph.  Running the suppression audit afterwards
// shows the runtime agreeing with what the linter predicted statically.

#pragma once

#include <string>
#include <vector>

#include "investigation/investigation.h"
#include "lint/plan.h"

namespace lexfor::investigation {

struct StepExecution {
  PlanStepId step;
  lint::StepKind kind = lint::StepKind::kAcquisition;
  std::string name;

  // Application steps.
  bool granted = false;
  ProcessId instrument;

  // Acquisition steps.
  EvidenceId evidence;
  bool lawful = false;

  std::string note;  // court explanation / determination verdict
};

struct PlanExecution {
  std::vector<StepExecution> steps;  // in execution (scheduled) order

  [[nodiscard]] const StepExecution* find(PlanStepId id) const {
    for (const auto& s : steps) {
      if (s.step == id) return &s;
    }
    return nullptr;
  }
  [[nodiscard]] EvidenceId evidence_for(PlanStepId id) const {
    const StepExecution* s = find(id);
    return s == nullptr ? EvidenceId{} : s->evidence;
  }
};

// Runs `plan` against `investigation` in scheduled order.  The plan's
// initial facts are added to the investigation first; every executed
// acquisition contributes its expected yields (the runtime court sees
// all facts — discovering which of them were fruit is exactly what the
// suppression audit is for).
[[nodiscard]] PlanExecution execute_plan(Investigation& investigation,
                                         const lint::InvestigationPlan& plan);

}  // namespace lexfor::investigation
