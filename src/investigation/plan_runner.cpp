#include "investigation/plan_runner.h"

#include <algorithm>
#include <unordered_map>

namespace lexfor::investigation {

PlanExecution execute_plan(Investigation& investigation,
                           const lint::InvestigationPlan& plan) {
  for (const auto& fact : plan.initial_facts()) {
    investigation.add_fact(fact);
  }

  // Execute in the order the plan schedules, ties by insertion.
  std::vector<const lint::PlanStep*> order;
  order.reserve(plan.steps().size());
  for (const auto& step : plan.steps()) order.push_back(&step);
  std::stable_sort(order.begin(), order.end(),
                   [](const lint::PlanStep* a, const lint::PlanStep* b) {
                     return a->scheduled_at < b->scheduled_at;
                   });

  PlanExecution exec;
  std::unordered_map<PlanStepId, ProcessId> instruments;
  std::unordered_map<PlanStepId, EvidenceId> evidence;

  for (const lint::PlanStep* step : order) {
    StepExecution out;
    out.step = step->id;
    out.kind = step->kind;
    out.name = step->name;

    if (step->kind == lint::StepKind::kApplication) {
      const Result<ProcessId> ruling = investigation.apply_for(
          step->requested, legal::ProcessScope{}, step->scheduled_at);
      out.granted = ruling.ok();
      if (ruling.ok()) {
        out.instrument = ruling.value();
        instruments.emplace(step->id, ruling.value());
      } else {
        out.note = ruling.status().message();
      }
    } else {
      legal::GrantedAuthority held;
      if (step->uses_authority.valid()) {
        const auto it = instruments.find(step->uses_authority);
        if (it != instruments.end()) {
          held = investigation.authority(it->second);
        }
      }
      std::vector<EvidenceId> parents;
      for (const auto parent_id : step->derived_from) {
        const auto it = evidence.find(parent_id);
        if (it != evidence.end()) parents.push_back(it->second);
      }
      const AcquisitionOutcome outcome =
          investigation.acquire(step->scenario, step->name, held,
                                std::move(parents), step->aggrieved_party);
      out.evidence = outcome.evidence;
      out.lawful = outcome.lawful;
      out.note = outcome.determination.verdict();
      evidence.emplace(step->id, outcome.evidence);
      for (const auto& fact : step->yields_facts) {
        investigation.add_fact(fact);
      }
    }
    exec.steps.push_back(std::move(out));
  }
  return exec;
}

}  // namespace lexfor::investigation
