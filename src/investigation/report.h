// Case report generation.
//
// Produces the human-readable case file an investigator would hand to a
// prosecutor: the asserted facts and their aggregate standard of proof,
// every process application (granted or denied), every acquisition with
// its legality, and the admissibility audit.  Markdown, deterministic.

#pragma once

#include <string>

#include "investigation/investigation.h"

namespace lexfor::investigation {

// Full case file for the investigation at its current state.
[[nodiscard]] std::string case_report(const Investigation& inv);

// Just the suppression section (the "motion to suppress" preview).
[[nodiscard]] std::string suppression_report(const Investigation& inv);

}  // namespace lexfor::investigation
