#include "investigation/investigation.h"

#include "lint/linter.h"

namespace lexfor::investigation {

Result<ProcessId> Investigation::apply_for(legal::ProcessKind kind,
                                           legal::ProcessScope scope,
                                           SimTime now) {
  Application app;
  app.requested = kind;
  app.facts = facts_;
  app.category = category_;
  app.scope = std::move(scope);

  Ruling ruling = court_.adjudicate(app, now);
  rulings_.push_back(ruling);
  if (!ruling.granted) {
    return PermissionDenied(ruling.explanation);
  }
  const ProcessId id = ruling.process.id;
  held_.emplace(id, std::move(ruling.process));
  return id;
}

const legal::LegalProcess* Investigation::process(ProcessId id) const {
  const auto it = held_.find(id);
  return it == held_.end() ? nullptr : &it->second;
}

legal::GrantedAuthority Investigation::authority(ProcessId id) const {
  const auto it = held_.find(id);
  if (it == held_.end()) return legal::GrantedAuthority{};
  return legal::GrantedAuthority{it->second};
}

legal::GrantedAuthority Investigation::best_authority() const {
  const legal::LegalProcess* best = nullptr;
  for (const auto& [id, proc] : held_) {
    if (best == nullptr ||
        !legal::satisfies(best->kind, proc.kind)) {
      best = &proc;
    }
  }
  if (best == nullptr) return legal::GrantedAuthority{};
  return legal::GrantedAuthority{*best};
}

lint::LintReport Investigation::lint_plan(lint::InvestigationPlan plan) const {
  plan.set_initial_facts(facts_);
  plan.set_category(category_);
  return lint::PlanLinter{}.lint(plan);
}

AcquisitionOutcome Investigation::acquire(
    const legal::Scenario& scenario, std::string description,
    const legal::GrantedAuthority& held,
    std::vector<EvidenceId> derived_from, std::string aggrieved_party) {
  AcquisitionOutcome outcome;
  outcome.determination = engine_.evaluate(scenario);
  outcome.evidence = evidence_ids_.next();
  outcome.lawful =
      legal::satisfies(held.kind(), outcome.determination.required_process);

  legal::AcquisitionRecord rec;
  rec.id = outcome.evidence;
  rec.description = std::move(description);
  rec.required = outcome.determination.required_process;
  rec.held = held.kind();
  rec.derived_from = std::move(derived_from);
  rec.aggrieved_party = std::move(aggrieved_party);
  // Parents are issued by this object in order, so insertion cannot fail
  // unless the caller invents ids; ignore the status deliberately only
  // after checking.
  const Status added = provenance_.add(std::move(rec));
  (void)added;
  return outcome;
}

}  // namespace lexfor::investigation
