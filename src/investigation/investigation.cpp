#include "investigation/investigation.h"

#include "lint/linter.h"
#include "obs/obs.h"

namespace lexfor::investigation {

Result<ProcessId> Investigation::apply_for(legal::ProcessKind kind,
                                           legal::ProcessScope scope,
                                           SimTime now) {
  Application app;
  app.requested = kind;
  app.facts = facts_;
  app.category = category_;
  app.scope = std::move(scope);

  LEXFOR_OBS_SPAN(obs::Level::kInfo, "investigation", "apply_for",
                  "case=" + std::to_string(id_.value()) +
                      ",kind=" + std::string(legal::to_string(kind)),
                  now);
  Ruling ruling = court_.adjudicate(app, now);
  rulings_.push_back(ruling);
  if (!ruling.granted) {
    LEXFOR_OBS_COUNTER_ADD("investigation.applications_denied", 1);
    return PermissionDenied(ruling.explanation);
  }
  const ProcessId id = ruling.process.id;
  LEXFOR_OBS_COUNTER_ADD("investigation.authorities_held", 1);
  LEXFOR_OBS_EVENT(obs::Level::kAudit, "investigation", "authority_granted",
                   "case=" + std::to_string(id_.value()) +
                       ",process=" + std::to_string(id.value()) +
                       ",kind=" + std::string(legal::to_string(kind)),
                   now);
  held_.emplace(id, std::move(ruling.process));
  return id;
}

const legal::LegalProcess* Investigation::process(ProcessId id) const {
  const auto it = held_.find(id);
  return it == held_.end() ? nullptr : &it->second;
}

legal::GrantedAuthority Investigation::authority(ProcessId id) const {
  const auto it = held_.find(id);
  if (it == held_.end()) return legal::GrantedAuthority{};
  return legal::GrantedAuthority{it->second};
}

legal::GrantedAuthority Investigation::best_authority() const {
  const legal::LegalProcess* best = nullptr;
  for (const auto& [id, proc] : held_) {
    if (best == nullptr ||
        !legal::satisfies(best->kind, proc.kind)) {
      best = &proc;
    }
  }
  if (best == nullptr) return legal::GrantedAuthority{};
  return legal::GrantedAuthority{*best};
}

lint::LintReport Investigation::lint_plan(lint::InvestigationPlan plan) const {
  plan.set_initial_facts(facts_);
  plan.set_category(category_);
  return lint::PlanLinter{}.lint(plan);
}

AcquisitionOutcome Investigation::acquire(
    const legal::Scenario& scenario, std::string description,
    const legal::GrantedAuthority& held,
    std::vector<EvidenceId> derived_from, std::string aggrieved_party) {
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "investigation", "acquire",
                  "case=" + std::to_string(id_.value()) +
                      ",scenario=" + scenario.name,
                  obs::no_sim_time());
  AcquisitionOutcome outcome;
  outcome.determination = evaluator_.evaluate(scenario);
  outcome.evidence = evidence_ids_.next();
  outcome.lawful =
      legal::satisfies(held.kind(), outcome.determination.required_process);
  LEXFOR_OBS_COUNTER_ADD("investigation.acquisitions", 1);
  if (!outcome.lawful) {
    LEXFOR_OBS_COUNTER_ADD("investigation.unlawful_acquisitions", 1);
  }
  // The trace line a motion to suppress would turn on: what the law
  // required vs what the investigators actually held.
  LEXFOR_OBS_EVENT(
      obs::Level::kAudit, "investigation", "acquisition",
      "case=" + std::to_string(id_.value()) +
          ",evidence=" + std::to_string(outcome.evidence.value()) +
          ",required=" +
          std::string(
              legal::to_string(outcome.determination.required_process)) +
          ",held=" + std::string(legal::to_string(held.kind())) +
          ",lawful=" + (outcome.lawful ? "yes" : "no"),
      obs::no_sim_time());

  legal::AcquisitionRecord rec;
  rec.id = outcome.evidence;
  rec.description = std::move(description);
  rec.required = outcome.determination.required_process;
  rec.held = held.kind();
  rec.derived_from = std::move(derived_from);
  rec.aggrieved_party = std::move(aggrieved_party);
  // Parents are issued by this object in order, so insertion cannot fail
  // unless the caller invents ids; ignore the status deliberately only
  // after checking.
  const Status added = provenance_.add(std::move(rec));
  (void)added;
  return outcome;
}

}  // namespace lexfor::investigation
