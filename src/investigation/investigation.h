// Investigation workflow: facts -> process -> acquisition -> audit.
//
// The integration layer the paper's §III describes.  An Investigation
// accumulates facts (raising the supportable standard of proof), applies
// to the Court for process, executes acquisitions whose legality the
// ComplianceEngine determines, threads every acquisition into the
// provenance graph, and finally runs the suppression audit — revealing
// which evidence would survive a motion to suppress.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "investigation/court.h"
#include "legal/authority.h"
#include "legal/batch.h"
#include "legal/engine.h"
#include "legal/suppression.h"
#include "lint/diagnostic.h"
#include "lint/plan.h"
#include "util/ids.h"
#include "util/status.h"

namespace lexfor::investigation {

struct AcquisitionOutcome {
  EvidenceId evidence;
  legal::Determination determination;
  bool lawful = false;  // held authority satisfied the requirement
};

class Investigation {
 public:
  Investigation(CaseId id, std::string title, legal::CrimeCategory category,
                Court& court)
      : id_(id), title_(std::move(title)), category_(category), court_(court) {}

  [[nodiscard]] CaseId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  // --- facts -----------------------------------------------------------
  void add_fact(legal::Fact fact) { facts_.push_back(std::move(fact)); }
  [[nodiscard]] const std::vector<legal::Fact>& facts() const noexcept {
    return facts_;
  }
  [[nodiscard]] legal::ProofAssessment current_standard() const {
    return legal::assess_proof(facts_, category_);
  }

  // --- process ----------------------------------------------------------
  // Applies to the court with the current fact set.  On grant, the
  // instrument is retained and becomes available as authority.
  Result<ProcessId> apply_for(legal::ProcessKind kind,
                              legal::ProcessScope scope, SimTime now);

  [[nodiscard]] const legal::LegalProcess* process(ProcessId id) const;
  [[nodiscard]] legal::GrantedAuthority authority(ProcessId id) const;
  // The strongest instrument currently held (for convenience).
  [[nodiscard]] legal::GrantedAuthority best_authority() const;

  // --- acquisition --------------------------------------------------------
  // Performs an acquisition described by `scenario` using `held` (which
  // may be an empty/default authority for process-free actions).  The
  // compliance engine determines the requirement; the result is recorded
  // in the provenance graph either way — unlawful acquisitions are how
  // suppression happens, and the audit must see them.
  AcquisitionOutcome acquire(const legal::Scenario& scenario,
                             std::string description,
                             const legal::GrantedAuthority& held,
                             std::vector<EvidenceId> derived_from = {},
                             std::string aggrieved_party = {});

  // --- plan linting ------------------------------------------------------
  // Statically lints `plan` before anything executes, using THIS
  // investigation's current fact set and crime category as the plan's
  // starting point (the plan's own initial facts are replaced).  A clean
  // report means every step is executable and its evidence admissible as
  // planned; run it before execute_plan (plan_runner.h).
  [[nodiscard]] lint::LintReport lint_plan(lint::InvestigationPlan plan) const;

  // --- audit ---------------------------------------------------------------
  [[nodiscard]] legal::SuppressionReport admissibility_audit() const {
    return legal::analyze_suppression(provenance_);
  }
  // The audit as applied to a motion to suppress by `movant` (standing
  // doctrine: only violations of the movant's own rights count).
  [[nodiscard]] legal::SuppressionReport motion_to_suppress(
      const std::string& movant) const {
    return legal::analyze_suppression_for(provenance_, movant);
  }
  [[nodiscard]] const legal::ProvenanceGraph& provenance() const noexcept {
    return provenance_;
  }
  [[nodiscard]] const std::vector<Ruling>& rulings() const noexcept {
    return rulings_;
  }

 private:
  CaseId id_;
  std::string title_;
  legal::CrimeCategory category_;
  Court& court_;
  std::vector<legal::Fact> facts_;
  std::vector<Ruling> rulings_;  // every application, granted or not
  std::unordered_map<ProcessId, legal::LegalProcess> held_;
  legal::ProvenanceGraph provenance_;
  // Determinations route through the process-wide verdict cache:
  // re-acquiring a previously linted (or previously acquired) scenario
  // costs a cache hit, not a fresh derivation.
  legal::BatchEvaluator evaluator_;
  IdGenerator<EvidenceId> evidence_ids_{1};
};

}  // namespace lexfor::investigation
