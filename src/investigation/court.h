// Court simulator.
//
// Issues subpoenas, court orders, search warrants and wiretap orders
// according to the paper's §II.A/§III.A standards: the applicant's facts
// are assessed into a standard of proof (mere suspicion / articulable
// facts / probable cause), stale facts are discounted per the crime
// category, and warrant applications must satisfy particularity.
// Deterministic: the same application always produces the same ruling.

#pragma once

#include <string>
#include <vector>

#include "legal/facts.h"
#include "legal/process.h"
#include "util/ids.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace lexfor::investigation {

struct Application {
  legal::ProcessKind requested;
  std::vector<legal::Fact> facts;
  legal::CrimeCategory category = legal::CrimeCategory::kGeneral;
  legal::ProcessScope scope;
};

struct Ruling {
  bool granted = false;
  std::string explanation;
  legal::ProofAssessment assessment;
  // Populated when granted.
  legal::LegalProcess process;
};

class Court {
 public:
  Court() = default;

  // Adjudicates the application at time `now`.
  [[nodiscard]] Ruling adjudicate(const Application& application, SimTime now);

  [[nodiscard]] std::uint64_t applications_heard() const noexcept {
    return heard_;
  }
  [[nodiscard]] std::uint64_t processes_issued() const noexcept {
    return issued_;
  }

 private:
  IdGenerator<ProcessId> process_ids_{1};
  std::uint64_t heard_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace lexfor::investigation
