#include "investigation/court.h"

#include <sstream>

namespace lexfor::investigation {

Ruling Court::adjudicate(const Application& application, SimTime now) {
  ++heard_;
  Ruling ruling;
  ruling.assessment =
      legal::assess_proof(application.facts, application.category);

  // Formal validity first (particularity, sensible request).
  const Status valid = legal::validate_application(
      application.requested, ruling.assessment.standard, application.scope);
  if (!valid.ok()) {
    ruling.granted = false;
    std::ostringstream os;
    os << "application denied: " << valid;
    ruling.explanation = os.str();
    return ruling;
  }

  ruling.granted = true;
  ++issued_;
  ruling.process.id = process_ids_.next();
  ruling.process.kind = application.requested;
  ruling.process.scope = application.scope;
  ruling.process.issued_at = now;
  ruling.process.supported_by = ruling.assessment.standard;
  std::ostringstream os;
  os << "issued " << legal::to_string(application.requested) << " on "
     << legal::to_string(ruling.assessment.standard);
  ruling.explanation = os.str();
  return ruling;
}

}  // namespace lexfor::investigation
