#include "investigation/court.h"

#include <sstream>

#include "obs/obs.h"

namespace lexfor::investigation {

Ruling Court::adjudicate(const Application& application, SimTime now) {
  ++heard_;
  LEXFOR_OBS_COUNTER_ADD("court.applications_heard", 1);
  Ruling ruling;
  ruling.assessment =
      legal::assess_proof(application.facts, application.category);

  // Formal validity first (particularity, sensible request).
  const Status valid = legal::validate_application(
      application.requested, ruling.assessment.standard, application.scope);
  if (!valid.ok()) {
    ruling.granted = false;
    std::ostringstream os;
    os << "application denied: " << valid;
    ruling.explanation = os.str();
    LEXFOR_OBS_COUNTER_ADD("court.applications_denied", 1);
    LEXFOR_OBS_EVENT(
        obs::Level::kAudit, "court", "application_denied",
        "requested=" + std::string(legal::to_string(application.requested)),
        now);
    return ruling;
  }

  ruling.granted = true;
  ++issued_;
  LEXFOR_OBS_COUNTER_ADD("court.processes_issued", 1);
  LEXFOR_OBS_EVENT(
      obs::Level::kAudit, "court", "process_issued",
      "kind=" + std::string(legal::to_string(application.requested)) +
          ",standard=" +
          std::string(legal::to_string(ruling.assessment.standard)),
      now);
  ruling.process.id = process_ids_.next();
  ruling.process.kind = application.requested;
  ruling.process.scope = application.scope;
  ruling.process.issued_at = now;
  ruling.process.supported_by = ruling.assessment.standard;
  std::ostringstream os;
  os << "issued " << legal::to_string(application.requested) << " on "
     << legal::to_string(ruling.assessment.standard);
  ruling.explanation = os.str();
  return ruling;
}

}  // namespace lexfor::investigation
