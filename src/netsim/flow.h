// Traffic flow generators.
//
// Workload sources for experiments: constant-rate, Poisson, and on/off
// flows emitting packets from a source node to a destination.  The DSSS
// watermark experiment (§IV.B) additionally needs a *modulated* flow
// whose instantaneous rate is controlled externally; RateModulatedFlow
// supports that through a rate-multiplier callback.

#pragma once

#include <functional>
#include <string>

#include "netsim/network.h"
#include "util/rng.h"

namespace lexfor::netsim {

struct FlowConfig {
  FlowId id;
  NodeId src;
  NodeId dst;
  std::uint16_t src_port = 40000;
  std::uint16_t dst_port = 80;
  std::size_t packet_bytes = 512;
  double packets_per_sec = 100.0;
  SimTime start = SimTime::zero();
  SimTime stop = SimTime::from_sec(10.0);
};

// Drives a flow through the network.  Scheduling style:
//  - kConstant: fixed inter-packet gap 1/rate
//  - kPoisson: exponential inter-arrivals with mean 1/rate
enum class ArrivalProcess { kConstant, kPoisson };

class FlowSource {
 public:
  // rate_multiplier (optional): sampled at each emission; scales the
  // instantaneous packet rate.  Returning 1.0 leaves the base rate; the
  // watermarker returns e.g. 1+d or 1-d per PN chip.
  using RateMultiplier = std::function<double(SimTime)>;

  FlowSource(Network& net, FlowConfig config, ArrivalProcess process,
             std::uint64_t seed, RateMultiplier rate_multiplier = nullptr)
      : net_(net),
        config_(config),
        process_(process),
        rng_(seed),
        rate_multiplier_(std::move(rate_multiplier)) {}

  // Schedules the first emission.  Subsequent emissions self-schedule.
  void start() {
    net_.clock().schedule_at(config_.start, [this] { emit(); });
  }

  // Packets the network ACCEPTED (send succeeded).  A rejected send —
  // no route on a partitioned topology, oversized payload — counts in
  // errors() instead, so emitted() always equals the network's view of
  // this flow's sent packets.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }

 private:
  void emit() {
    const SimTime now = net_.clock().now();
    if (now >= config_.stop) return;

    PacketHeader h;
    h.src = config_.src;
    h.dst = config_.dst;
    h.src_port = config_.src_port;
    h.dst_port = config_.dst_port;
    if (net_.send(config_.id, h, Bytes(config_.packet_bytes, 0xAB)).ok()) {
      ++emitted_;
    } else {
      ++errors_;
    }

    double rate = config_.packets_per_sec;
    if (rate_multiplier_) rate *= rate_multiplier_(now);
    if (rate <= 0.0) rate = 1e-3;

    const double gap_sec = process_ == ArrivalProcess::kConstant
                               ? 1.0 / rate
                               : rng_.exponential(1.0 / rate);
    net_.clock().schedule_in(SimDuration::from_sec(gap_sec),
                             [this] { emit(); });
  }

  Network& net_;
  FlowConfig config_;
  ArrivalProcess process_;
  Rng rng_;
  RateMultiplier rate_multiplier_;
  std::uint64_t emitted_ = 0;
  std::uint64_t errors_ = 0;
};

// A rate recorder: bins packet observations into fixed windows, yielding
// the rate time-series the watermark detector correlates against.
class RateRecorder {
 public:
  // A non-positive bin width is a configuration error, not a license to
  // divide by zero: it is clamped to the 1us clock resolution.
  explicit RateRecorder(SimDuration bin)
      : bin_(bin.us > 0 ? bin : SimDuration::from_us(1)) {}

  void observe(SimTime at) {
    // A negative timestamp would cast to a huge size_t index and drive
    // an unbounded resize; such observations are counted and ignored.
    if (at.us < 0) {
      ++rejected_;
      return;
    }
    const auto idx = static_cast<std::size_t>(at.us / bin_.us);
    if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
    ++bins_[idx];
  }

  [[nodiscard]] const std::vector<std::uint32_t>& bins() const noexcept {
    return bins_;
  }
  [[nodiscard]] SimDuration bin_width() const noexcept { return bin_; }
  // Observations refused (pre-simulation-start timestamps).
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

  // Rates (packets/sec) per bin.
  [[nodiscard]] std::vector<double> rates() const {
    std::vector<double> out;
    out.reserve(bins_.size());
    const double sec = bin_.seconds();
    for (const auto c : bins_) out.push_back(static_cast<double>(c) / sec);
    return out;
  }

 private:
  SimDuration bin_;
  std::vector<std::uint32_t> bins_;
  std::uint64_t rejected_ = 0;
};

}  // namespace lexfor::netsim
