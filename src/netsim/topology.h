// Topology generators for experiment workloads.
//
// Builders for the network shapes the paper's scenarios live on: a
// campus network (clients behind a gateway behind an ISP), a star, a
// tree, and an Erdos-Renyi random graph.  Each returns the node ids of
// the interesting roles so benches can attach taps and flows without
// re-deriving structure.

#pragma once

#include <vector>

#include "netsim/network.h"

namespace lexfor::netsim {

struct CampusTopology {
  NodeId internet;          // the outside world
  NodeId isp;               // the campus' upstream ISP
  NodeId gateway;           // campus border (where campus IT taps, Table-1 #1)
  std::vector<NodeId> hosts;
};

// internet -- isp -- gateway -- host_i (fan-out).
[[nodiscard]] CampusTopology make_campus(Network& net, std::size_t hosts,
                                         LinkConfig backbone = {},
                                         LinkConfig access = {});

struct StarTopology {
  NodeId hub;
  std::vector<NodeId> leaves;
};

[[nodiscard]] StarTopology make_star(Network& net, std::size_t leaves,
                                     LinkConfig link = {});

// A balanced tree of the given fanout and depth; returns nodes in BFS
// order (root first).
[[nodiscard]] std::vector<NodeId> make_tree(Network& net, std::size_t fanout,
                                            std::size_t depth,
                                            LinkConfig link = {});

// Erdos-Renyi G(n, p), kept connected by a spanning chain.
[[nodiscard]] std::vector<NodeId> make_random(Network& net, std::size_t nodes,
                                              double edge_probability,
                                              std::uint64_t seed,
                                              LinkConfig link = {});

}  // namespace lexfor::netsim
