// Memoized BFS routing with shared, reference-counted paths.
//
// The pre-ISSUE-8 Network::send ran a fresh O(V+E) BFS and built a
// fresh path vector for EVERY packet — then moved that vector into the
// hop closure, where the old event queue deep-copied it per event.
// RouteCache memoizes both layers:
//
//  - per-source BFS next-hop trees, built lazily once per (source,
//    topology version) in an epoch util::Arena — the tree lives exactly
//    as long as the topology it describes, and invalidate() drops every
//    tree in O(1) by resetting the arena;
//  - materialized (src, dst) paths, built once from the tree and shared
//    by every packet on that pair through a reference-counted
//    util::Pool handle.  A packet in flight holds a reference, so a
//    topology change (which invalidates the cache) never yanks a path
//    out from under it: the old path survives until its last packet
//    delivers or drops, preserving the frozen-path drop semantics the
//    accounting tests lock down.
//
// The BFS is bit-identical to Network::shortest_path (same adjacency
// order, same FIFO frontier, same parent = first-discoverer rule), so
// memoized routing produces exactly the routes the unmemoized code
// produced — every seeded simulation replays unchanged.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/arena.h"
#include "util/ids.h"

namespace lexfor::netsim {

// One directed edge of the adjacency structure Network maintains.
struct Adjacency {
  NodeId neighbor;
  std::uint32_t link_index;
};
using AdjacencyList = std::vector<std::vector<Adjacency>>;

class RouteCache {
 public:
  using PathRef = std::uint32_t;
  static constexpr PathRef kNull = ~PathRef{0};

  // Returns a shared path src -> dst (inclusive of both endpoints), or
  // kNull if dst is unreachable.  The caller owns one reference on the
  // returned path and must release() it.  Unreachability is memoized
  // too, so a partitioned flow retrying every emission costs O(1) per
  // retry, not one BFS walk each.
  [[nodiscard]] PathRef acquire(NodeId src, NodeId dst,
                                const AdjacencyList& adj);

  void add_ref(PathRef p) noexcept;
  void release(PathRef p) noexcept;

  [[nodiscard]] const std::vector<NodeId>& hops(PathRef p) const noexcept {
    return paths_[p].hops;
  }

  // Topology changed: drop every memoized tree (arena reset) and the
  // (src, dst) lookup's references.  Paths still referenced by
  // in-flight packets survive until their refcounts drain.
  void invalidate();

  // --- introspection (tests, A-NETSIM gate) -------------------------
  [[nodiscard]] std::size_t cached_pairs() const noexcept {
    return lookup_.size();
  }
  [[nodiscard]] std::size_t cached_trees() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] std::size_t live_paths() const noexcept {
    return paths_.live();
  }
  [[nodiscard]] std::size_t path_slots() const noexcept {
    return paths_.capacity();
  }
  [[nodiscard]] std::uint64_t bfs_runs() const noexcept { return bfs_runs_; }

 private:
  struct PathRec {
    std::vector<NodeId> hops;
    std::uint32_t refs = 0;
  };
  // Arena-backed per-source BFS tree: parent[i] is the first discoverer
  // of node i, seen[i] whether i is reachable from the source.
  struct Tree {
    NodeId* parent = nullptr;
    std::uint8_t* seen = nullptr;
    std::size_t nodes = 0;
  };

  // Keeps epoch memory bounded when a pathological workload sends from
  // very many distinct sources: past this many memoized trees the epoch
  // is recycled wholesale.
  static constexpr std::size_t kMaxTrees = 512;

  [[nodiscard]] const Tree& tree_for(NodeId src, const AdjacencyList& adj);

  util::Pool<PathRec> paths_;
  // (src << 32 | dst) -> PathRef (or kNull for memoized unreachability);
  // each non-null entry holds one reference.
  std::unordered_map<std::uint64_t, PathRef> lookup_;
  std::unordered_map<std::uint64_t, Tree> trees_;
  util::Arena arena_;                      // epoch storage for trees
  std::vector<NodeId> frontier_;           // reusable BFS queue
  std::uint64_t bfs_runs_ = 0;
};

}  // namespace lexfor::netsim
