#include "netsim/network.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "obs/obs.h"

namespace lexfor::netsim {

NodeId Network::add_node(std::string name) {
  const NodeId id{nodes_.size()};
  nodes_.push_back(NodeInfo{id, std::move(name)});
  adjacency_.emplace_back();
  return id;
}

Result<LinkId> Network::connect(NodeId a, NodeId b, LinkConfig config) {
  if (!valid_node(a) || !valid_node(b)) {
    return NotFound("connect: unknown node");
  }
  if (a == b) {
    return InvalidArgument("connect: self-loops are not allowed");
  }
  for (const auto& adj : adjacency_[a.value()]) {
    if (adj.neighbor == b) {
      return AlreadyExists("connect: nodes already linked");
    }
  }
  const LinkId id{links_.size()};
  links_.push_back(LinkInfo{id, a, b, config});
  const auto link_index = static_cast<std::uint32_t>(links_.size() - 1);
  adjacency_[a.value()].push_back({b, link_index});
  adjacency_[b.value()].push_back({a, link_index});
  routes_.invalidate();  // memoized routes describe the old topology
  return id;
}

Status Network::disconnect(LinkId link) {
  if (!valid_link(link)) {
    return NotFound("disconnect: unknown link");
  }
  const LinkInfo& info = links_[link.value()];
  bool removed = false;
  for (const NodeId end : {info.a, info.b}) {
    auto& adj = adjacency_[end.value()];
    for (auto it = adj.begin(); it != adj.end(); ++it) {
      if (it->link_index == link.value()) {
        adj.erase(it);
        removed = true;
        break;
      }
    }
  }
  if (!removed) {
    return FailedPrecondition("disconnect: link already removed");
  }
  // Erase all per-link state with the link: the transmitter's busy time
  // and any taps.  Without this a churn simulation leaks one map entry
  // per removed link, and a stale tap entry lingers forever for a link
  // that can never carry traffic again.
  link_busy_until_.erase(link);
  link_taps_.erase(link);
  routes_.invalidate();
  LEXFOR_OBS_EVENT(obs::Level::kInfo, "netsim", "link_removed",
                   "link=" + std::to_string(link.value()), events_.now());
  return Status::Ok();
}

std::optional<std::string> Network::node_name(NodeId id) const {
  if (!valid_node(id)) return std::nullopt;
  return nodes_[id.value()].name;
}

std::vector<NodeId> Network::shortest_path(NodeId src, NodeId dst) const {
  if (!valid_node(src) || !valid_node(dst)) return {};
  if (src == dst) return {src};

  std::vector<NodeId> parent(nodes_.size());
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<NodeId> frontier{src};
  seen[src.value()] = true;

  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& adj : adjacency_[u.value()]) {
      if (seen[adj.neighbor.value()]) continue;
      seen[adj.neighbor.value()] = true;
      parent[adj.neighbor.value()] = u;
      if (adj.neighbor == dst) {
        std::vector<NodeId> path{dst};
        NodeId cur = dst;
        while (cur != src) {
          cur = parent[cur.value()];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(adj.neighbor);
    }
  }
  return {};  // unreachable
}

Result<PacketId> Network::send(FlowId flow, PacketHeader header, Bytes payload) {
  if (!valid_node(header.src) || !valid_node(header.dst)) {
    return InvalidArgument("send: unknown endpoint");
  }
  const RouteCache::PathRef route =
      routes_.acquire(header.src, header.dst, adjacency_);
  if (route == RouteCache::kNull) {
    std::ostringstream os;
    os << "send: no route from " << header.src << " to " << header.dst;
    return NotFound(os.str());
  }

  if (payload.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    routes_.release(route);
    return InvalidArgument(
        "send: payload exceeds the 32-bit framing limit of "
        "PacketHeader::payload_size");
  }

  const PacketStore::Ref ref = store_.acquire();
  PacketStore::Meta& meta = store_.meta(ref);
  meta.id = packet_ids_.next();
  meta.flow = flow;
  meta.header = header;
  meta.header.payload_size = static_cast<std::uint32_t>(payload.size());
  meta.created_at = events_.now();
  store_.payload(ref) = std::move(payload);
  ++sent_;
  LEXFOR_OBS_COUNTER_ADD("netsim.packets_sent", 1);

  const PacketId id = meta.id;
  // First hop is scheduled immediately; subsequent hops chain.  The
  // callback captures three words — handles, not payloads.
  events_.schedule_in(SimDuration::from_us(0),
                      [this, ref, route] { deliver_hop(ref, route, 0); });
  return id;
}

void Network::retire(PacketStore::Ref ref,
                     RouteCache::PathRef route) noexcept {
  store_.release(ref);
  routes_.release(route);
}

void Network::deliver_hop(PacketStore::Ref ref, RouteCache::PathRef route,
                          std::uint32_t pos) {
  const std::vector<NodeId>& path = routes_.hops(route);
  const NodeId here = path[pos];
  if (pos + 1 >= path.size()) {
    // Arrived.
    ++delivered_;
    LEXFOR_OBS_COUNTER_ADD("netsim.packets_delivered", 1);
    LEXFOR_OBS_HISTOGRAM_RECORD(
        "netsim.e2e_latency_us",
        (events_.now() - store_.meta(ref).created_at).us);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "netsim", "delivered",
                     "packet=" + std::to_string(store_.meta(ref).id.value()),
                     events_.now());
    const auto it = handlers_.find(here);
    if (it != handlers_.end() && it->second) {
      store_.with_packet(ref, [&](const Packet& packet) {
        it->second(packet, events_.now());
      });
    }
    retire(ref, route);
    return;
  }

  const NodeId next = path[pos + 1];
  // Locate the link between here and next.
  const LinkInfo* link = nullptr;
  for (const auto& adj : adjacency_[here.value()]) {
    if (adj.neighbor == next) {
      link = &links_[adj.link_index];
      break;
    }
  }
  if (link == nullptr) {
    // The link vanished mid-flight (disconnect() raced the packet).
    // Count the loss like any other drop so the accounting invariant
    // sent == delivered + dropped survives topology changes.
    ++dropped_;
    LEXFOR_OBS_COUNTER_ADD("netsim.packets_dropped", 1);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "netsim", "dropped_link_vanished",
                     "packet=" + std::to_string(store_.meta(ref).id.value()),
                     events_.now());
    retire(ref, route);
    return;
  }

  // Loss.
  if (link->config.drop_probability > 0.0 &&
      rng_.bernoulli(link->config.drop_probability)) {
    ++dropped_;
    LEXFOR_OBS_COUNTER_ADD("netsim.packets_dropped", 1);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "netsim", "dropped",
                     "packet=" + std::to_string(store_.meta(ref).id.value()),
                     events_.now());
    retire(ref, route);
    return;
  }

  // Delay = queueing wait (bandwidth-limited links transmit one packet
  // at a time, FIFO) + serialization + propagation + jitter.
  SimDuration delay = link->config.latency;
  if (link->config.jitter.us > 0) {
    delay = delay + SimDuration::from_us(static_cast<std::int64_t>(
                        rng_.uniform(static_cast<std::uint64_t>(
                            link->config.jitter.us))));
  }
  if (link->config.bandwidth_bytes_per_sec > 0.0) {
    const double tx_sec = static_cast<double>(store_.meta(ref).wire_size()) /
                          link->config.bandwidth_bytes_per_sec;
    const SimDuration tx = SimDuration::from_sec(tx_sec);
    SimTime& busy_until = link_busy_until_[link->id];
    const SimTime start =
        busy_until > events_.now() ? busy_until : events_.now();
    busy_until = start + tx;
    // wait-in-queue + transmission, on top of propagation/jitter.
    delay = delay + (start - events_.now()) + tx;
  }

  LEXFOR_OBS_HISTOGRAM_RECORD("netsim.hop_delay_us", delay.us);
  const LinkId link_id = link->id;
  events_.schedule_in(
      delay, [this, ref, route, pos, link_id, here, next] {
        // Taps fire on traversal completion (the capture point).
        const auto taps = link_taps_.find(link_id);
        if (taps != link_taps_.end()) {
          store_.with_packet(ref, [&](const Packet& packet) {
            const TapEvent ev{packet, link_id, here, next, events_.now()};
            for (const auto& t : taps->second) t(ev);
          });
        }
        deliver_hop(ref, route, pos + 1);
      });
}

Status Network::set_receive_handler(NodeId node, ReceiveHandler handler) {
  if (!valid_node(node)) return NotFound("set_receive_handler: unknown node");
  handlers_[node] = std::move(handler);
  return Status::Ok();
}

Status Network::add_link_tap(LinkId link, TapFn tap) {
  if (!valid_link(link)) {
    return NotFound("add_link_tap: unknown link");
  }
  link_taps_[link].push_back(std::move(tap));
  return Status::Ok();
}

Status Network::add_node_tap(NodeId node, TapFn tap) {
  if (!valid_node(node)) return NotFound("add_node_tap: unknown node");
  bool any = false;
  for (const auto& adj : adjacency_[node.value()]) {
    link_taps_[links_[adj.link_index].id].push_back(tap);
    any = true;
  }
  if (!any) {
    return FailedPrecondition("add_node_tap: node has no links to tap");
  }
  return Status::Ok();
}

}  // namespace lexfor::netsim
