#include "netsim/network.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "obs/obs.h"

namespace lexfor::netsim {

NodeId Network::add_node(std::string name) {
  const NodeId id{nodes_.size()};
  nodes_.push_back(NodeInfo{id, std::move(name)});
  adjacency_.emplace_back();
  return id;
}

Result<LinkId> Network::connect(NodeId a, NodeId b, LinkConfig config) {
  if (!valid_node(a) || !valid_node(b)) {
    return NotFound("connect: unknown node");
  }
  if (a == b) {
    return InvalidArgument("connect: self-loops are not allowed");
  }
  for (const auto& adj : adjacency_[a.value()]) {
    if (adj.neighbor == b) {
      return AlreadyExists("connect: nodes already linked");
    }
  }
  const LinkId id{links_.size()};
  links_.push_back(LinkInfo{id, a, b, config});
  adjacency_[a.value()].push_back({b, links_.size() - 1});
  adjacency_[b.value()].push_back({a, links_.size() - 1});
  return id;
}

Status Network::disconnect(LinkId link) {
  if (!link.valid() || link.value() >= links_.size()) {
    return NotFound("disconnect: unknown link");
  }
  const LinkInfo& info = links_[link.value()];
  bool removed = false;
  for (const NodeId end : {info.a, info.b}) {
    auto& adj = adjacency_[end.value()];
    for (auto it = adj.begin(); it != adj.end(); ++it) {
      if (it->link_index == link.value()) {
        adj.erase(it);
        removed = true;
        break;
      }
    }
  }
  if (!removed) {
    return FailedPrecondition("disconnect: link already removed");
  }
  LEXFOR_OBS_EVENT(obs::Level::kInfo, "netsim", "link_removed",
                   "link=" + std::to_string(link.value()), events_.now());
  return Status::Ok();
}

std::optional<std::string> Network::node_name(NodeId id) const {
  if (!valid_node(id)) return std::nullopt;
  return nodes_[id.value()].name;
}

std::vector<NodeId> Network::shortest_path(NodeId src, NodeId dst) const {
  if (!valid_node(src) || !valid_node(dst)) return {};
  if (src == dst) return {src};

  std::vector<NodeId> parent(nodes_.size());
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<NodeId> frontier{src};
  seen[src.value()] = true;

  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& adj : adjacency_[u.value()]) {
      if (seen[adj.neighbor.value()]) continue;
      seen[adj.neighbor.value()] = true;
      parent[adj.neighbor.value()] = u;
      if (adj.neighbor == dst) {
        std::vector<NodeId> path{dst};
        NodeId cur = dst;
        while (cur != src) {
          cur = parent[cur.value()];
          path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(adj.neighbor);
    }
  }
  return {};  // unreachable
}

Result<PacketId> Network::send(FlowId flow, PacketHeader header, Bytes payload) {
  if (!valid_node(header.src) || !valid_node(header.dst)) {
    return InvalidArgument("send: unknown endpoint");
  }
  auto path = shortest_path(header.src, header.dst);
  if (path.empty()) {
    std::ostringstream os;
    os << "send: no route from " << header.src << " to " << header.dst;
    return NotFound(os.str());
  }

  if (payload.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    return InvalidArgument(
        "send: payload exceeds the 32-bit framing limit of "
        "PacketHeader::payload_size");
  }

  Packet packet;
  packet.id = packet_ids_.next();
  packet.flow = flow;
  packet.header = header;
  packet.header.payload_size = static_cast<std::uint32_t>(payload.size());
  packet.payload = std::move(payload);
  packet.created_at = events_.now();
  ++sent_;
  LEXFOR_OBS_COUNTER_ADD("netsim.packets_sent", 1);

  const PacketId id = packet.id;
  // First hop is scheduled immediately; subsequent hops chain.
  events_.schedule_in(SimDuration::from_us(0),
                      [this, packet = std::move(packet),
                       path = std::move(path)]() mutable {
                        deliver_hop(std::move(packet), 0, std::move(path));
                      });
  return id;
}

void Network::deliver_hop(Packet packet, std::size_t path_pos,
                          std::vector<NodeId> path) {
  const NodeId here = path[path_pos];
  if (path_pos + 1 >= path.size()) {
    // Arrived.
    ++delivered_;
    LEXFOR_OBS_COUNTER_ADD("netsim.packets_delivered", 1);
    LEXFOR_OBS_HISTOGRAM_RECORD("netsim.e2e_latency_us",
                                (events_.now() - packet.created_at).us);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "netsim", "delivered",
                     "packet=" + std::to_string(packet.id.value()),
                     events_.now());
    const auto it = handlers_.find(here);
    if (it != handlers_.end() && it->second) {
      it->second(packet, events_.now());
    }
    return;
  }

  const NodeId next = path[path_pos + 1];
  // Locate the link between here and next.
  const LinkInfo* link = nullptr;
  for (const auto& adj : adjacency_[here.value()]) {
    if (adj.neighbor == next) {
      link = &links_[adj.link_index];
      break;
    }
  }
  if (link == nullptr) {
    // The link vanished mid-flight (disconnect() raced the packet).
    // Count the loss like any other drop so the accounting invariant
    // sent == delivered + dropped survives topology changes.
    ++dropped_;
    LEXFOR_OBS_COUNTER_ADD("netsim.packets_dropped", 1);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "netsim", "dropped_link_vanished",
                     "packet=" + std::to_string(packet.id.value()),
                     events_.now());
    return;
  }

  // Loss.
  if (link->config.drop_probability > 0.0 &&
      rng_.bernoulli(link->config.drop_probability)) {
    ++dropped_;
    LEXFOR_OBS_COUNTER_ADD("netsim.packets_dropped", 1);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "netsim", "dropped",
                     "packet=" + std::to_string(packet.id.value()),
                     events_.now());
    return;
  }

  // Delay = queueing wait (bandwidth-limited links transmit one packet
  // at a time, FIFO) + serialization + propagation + jitter.
  SimDuration delay = link->config.latency;
  if (link->config.jitter.us > 0) {
    delay = delay + SimDuration::from_us(static_cast<std::int64_t>(
                        rng_.uniform(static_cast<std::uint64_t>(
                            link->config.jitter.us))));
  }
  if (link->config.bandwidth_bytes_per_sec > 0.0) {
    const double tx_sec = static_cast<double>(packet.wire_size()) /
                          link->config.bandwidth_bytes_per_sec;
    const SimDuration tx = SimDuration::from_sec(tx_sec);
    SimTime& busy_until = link_busy_until_[link->id];
    const SimTime start =
        busy_until > events_.now() ? busy_until : events_.now();
    busy_until = start + tx;
    // wait-in-queue + transmission, on top of propagation/jitter.
    delay = delay + (start - events_.now()) + tx;
  }

  LEXFOR_OBS_HISTOGRAM_RECORD("netsim.hop_delay_us", delay.us);
  const LinkId link_id = link->id;
  events_.schedule_in(
      delay, [this, packet = std::move(packet), path = std::move(path),
              path_pos, link_id, here, next]() mutable {
        // Taps fire on traversal completion (the capture point).
        const auto taps = link_taps_.find(link_id);
        if (taps != link_taps_.end()) {
          const TapEvent ev{packet, link_id, here, next, events_.now()};
          for (const auto& t : taps->second) t(ev);
        }
        deliver_hop(std::move(packet), path_pos + 1, std::move(path));
      });
}

Status Network::set_receive_handler(NodeId node, ReceiveHandler handler) {
  if (!valid_node(node)) return NotFound("set_receive_handler: unknown node");
  handlers_[node] = std::move(handler);
  return Status::Ok();
}

Status Network::add_link_tap(LinkId link, TapFn tap) {
  if (!link.valid() || link.value() >= links_.size()) {
    return NotFound("add_link_tap: unknown link");
  }
  link_taps_[link].push_back(std::move(tap));
  return Status::Ok();
}

Status Network::add_node_tap(NodeId node, TapFn tap) {
  if (!valid_node(node)) return NotFound("add_node_tap: unknown node");
  bool any = false;
  for (const auto& adj : adjacency_[node.value()]) {
    link_taps_[links_[adj.link_index].id].push_back(tap);
    any = true;
  }
  if (!any) {
    return FailedPrecondition("add_node_tap: node has no links to tap");
  }
  return Status::Ok();
}

}  // namespace lexfor::netsim
