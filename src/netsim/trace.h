// Capture traces: a pcap-like container with deterministic binary
// serialization.
//
// Capture devices produce records; a Trace packages them with a
// CRC-protected binary encoding so they can be handed to the evidence
// module (hashed, custody-chained) and re-read later.  The format is
// versioned and self-describing enough for round-trips; it is not pcap
// on the wire, but plays pcap's role in the pipeline.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netsim/packet.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lexfor::netsim {

struct TraceRecord {
  SimTime at;
  PacketHeader header;
  std::optional<Bytes> payload;  // absent for header-only captures
};

class Trace {
 public:
  Trace() = default;

  void add(TraceRecord record) { records_.push_back(std::move(record)); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  // Serializes to the versioned binary format (little-endian), with a
  // trailing CRC-32 over everything before it.
  [[nodiscard]] Bytes serialize() const;

  // Parses a serialized trace; verifies magic, version and CRC.
  static Result<Trace> deserialize(const Bytes& data);

  // Total payload bytes retained across records.
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace lexfor::netsim
