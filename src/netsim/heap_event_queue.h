// The original binary-heap event queue, retained as a test oracle.
//
// This is the pre-ISSUE-8 implementation, kept verbatim in semantics: a
// std::priority_queue of (time, seq, std::function) entries.  It is
// deliberately NOT used on any hot path — `Entry e = heap_.top()`
// copies the std::function and everything it captured once per event,
// which is the deep-copy collapse the calendar queue replaces.  Its
// value now is as a specification: (time, seq) FIFO order, past-time
// clamping, run/run_until semantics.  The property tests and the
// A-NETSIM bench gate replay randomized schedules through both queues
// and require bit-identical firing order.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sim_time.h"

namespace lexfor::netsim {

class HeapEventQueue {
 public:
  using Callback = std::function<void()>;

  void schedule_at(SimTime at, Callback cb) {
    if (at < now_) at = now_;
    heap_.push(Entry{at, next_seq_++, std::move(cb)});
  }

  void schedule_in(SimDuration delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  bool step() {
    if (heap_.empty()) return false;
    Entry e = heap_.top();  // the infamous per-event deep copy
    heap_.pop();
    now_ = e.at;
    ++processed_;
    e.cb();
    return true;
  }

  void run(std::uint64_t limit = ~std::uint64_t{0}) {
    while (limit-- > 0 && step()) {
    }
  }

  void run_until(SimTime until) {
    while (!heap_.empty() && heap_.top().at <= until) step();
    if (now_ < until) now_ = until;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return b.at < a.at;
      return b.seq < a.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace lexfor::netsim
