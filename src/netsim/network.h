// The packet network: nodes, links, shortest-path routing, taps.
//
// A deliberately small but honest network model: nodes joined by
// bidirectional links with latency, jitter and loss; packets are routed
// hop-by-hop along BFS shortest paths; observers ("taps") attached to
// links or nodes see traffic as it passes — taps are where the capture
// module plugs in.  Deterministic given the seed.

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/event_queue.h"
#include "netsim/packet.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/status.h"

namespace lexfor::netsim {

struct LinkConfig {
  SimDuration latency = SimDuration::from_ms(10.0);
  SimDuration jitter = SimDuration::from_ms(0.0);  // uniform [0, jitter)
  double drop_probability = 0.0;
  double bandwidth_bytes_per_sec = 0.0;  // 0 = infinite
};

struct NodeInfo {
  NodeId id;
  std::string name;
};

struct LinkInfo {
  LinkId id;
  NodeId a;
  NodeId b;
  LinkConfig config;
};

// A tap observes every packet traversing a link, with direction.
struct TapEvent {
  const Packet& packet;
  LinkId link;
  NodeId from;
  NodeId to;
  SimTime at;
};

class Network {
 public:
  using ReceiveHandler = std::function<void(const Packet&, SimTime)>;
  using TapFn = std::function<void(const TapEvent&)>;

  explicit Network(std::uint64_t seed = 1) : rng_(seed) {}

  // --- topology -----------------------------------------------------
  NodeId add_node(std::string name);
  Result<LinkId> connect(NodeId a, NodeId b, LinkConfig config = {});
  // Removes a link from the topology (link failure / tap teardown).
  // Packets already in flight that reach the vanished link are dropped
  // and counted, preserving sent == delivered + dropped.
  Status disconnect(LinkId link);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const std::vector<NodeInfo>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::optional<std::string> node_name(NodeId id) const;

  // --- traffic ------------------------------------------------------
  // Sends a packet from header.src to header.dst along the shortest
  // path.  Returns the packet id, or an error if no route exists.
  Result<PacketId> send(FlowId flow, PacketHeader header, Bytes payload);

  // Registers a handler invoked when a node receives a packet addressed
  // to it.  One handler per node; a later call replaces the earlier one.
  Status set_receive_handler(NodeId node, ReceiveHandler handler);

  // Attaches a tap to a link; all taps fire for every traversal.
  Status add_link_tap(LinkId link, TapFn tap);
  // Attaches a tap to every link incident to `node` (an "ISP tap" on
  // everything entering/leaving the node).
  Status add_node_tap(NodeId node, TapFn tap);

  // --- simulation control --------------------------------------------
  EventQueue& clock() noexcept { return events_; }
  void run() { events_.run(); }
  void run_until(SimTime t) { events_.run_until(t); }
  [[nodiscard]] SimTime now() const noexcept { return events_.now(); }

  // --- statistics -----------------------------------------------------
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t packets_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t packets_dropped() const noexcept {
    return dropped_;
  }

  // Computes the BFS next-hop table from `src`; exposed for tests.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId src, NodeId dst) const;

 private:
  struct Adjacency {
    NodeId neighbor;
    std::size_t link_index;
  };

  [[nodiscard]] bool valid_node(NodeId id) const noexcept {
    return id.valid() && id.value() < nodes_.size();
  }

  void deliver_hop(Packet packet, std::size_t path_pos,
                   std::vector<NodeId> path);

  std::vector<NodeInfo> nodes_;
  std::vector<LinkInfo> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::unordered_map<NodeId, ReceiveHandler> handlers_;
  std::unordered_map<LinkId, std::vector<TapFn>> link_taps_;
  // FIFO transmitter state for bandwidth-limited links.
  std::unordered_map<LinkId, SimTime> link_busy_until_;

  EventQueue events_;
  Rng rng_;
  IdGenerator<PacketId> packet_ids_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace lexfor::netsim
