// The packet network: nodes, links, shortest-path routing, taps.
//
// A deliberately small but honest network model: nodes joined by
// bidirectional links with latency, jitter and loss; packets are routed
// hop-by-hop along BFS shortest paths; observers ("taps") attached to
// links or nodes see traffic as it passes — taps are where the capture
// module plugs in.  Deterministic given the seed.
//
// ISSUE 8 made the hot path data-oriented: in-flight packets live in a
// PacketStore (SoA slot pool, 32-bit handles), routes come from a
// RouteCache (memoized per-source BFS trees + shared refcounted paths,
// invalidated on connect/disconnect), and hop callbacks capture only
// handles — so scheduling a hop moves a few words, never a payload.
// The observable model is unchanged: a packet's path is frozen at
// send() time, a link removed under an in-flight packet drops it (and
// the drop is counted, preserving sent == delivered + dropped), and
// every seeded run replays bit-identically.

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/event_queue.h"
#include "netsim/packet.h"
#include "netsim/packet_store.h"
#include "netsim/routing.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/status.h"

namespace lexfor::netsim {

struct LinkConfig {
  SimDuration latency = SimDuration::from_ms(10.0);
  SimDuration jitter = SimDuration::from_ms(0.0);  // uniform [0, jitter)
  double drop_probability = 0.0;
  double bandwidth_bytes_per_sec = 0.0;  // 0 = infinite
};

struct NodeInfo {
  NodeId id;
  std::string name;
};

struct LinkInfo {
  LinkId id;
  NodeId a;
  NodeId b;
  LinkConfig config;
};

// A tap observes every packet traversing a link, with direction.
struct TapEvent {
  const Packet& packet;
  LinkId link;
  NodeId from;
  NodeId to;
  SimTime at;
};

class Network {
 public:
  using ReceiveHandler = std::function<void(const Packet&, SimTime)>;
  using TapFn = std::function<void(const TapEvent&)>;

  explicit Network(std::uint64_t seed = 1) : rng_(seed) {}

  // --- topology -----------------------------------------------------
  NodeId add_node(std::string name);
  Result<LinkId> connect(NodeId a, NodeId b, LinkConfig config = {});
  // Removes a link from the topology (link failure / tap teardown).
  // Packets already in flight that reach the vanished link are dropped
  // and counted, preserving sent == delivered + dropped.  All per-link
  // state (transmitter busy time, taps) is erased with the link, so a
  // topology-churn simulation holds its footprint flat.
  Status disconnect(LinkId link);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const std::vector<NodeInfo>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::optional<std::string> node_name(NodeId id) const;

  // --- traffic ------------------------------------------------------
  // Sends a packet from header.src to header.dst along the shortest
  // path.  Returns the packet id, or an error if no route exists.  The
  // route is resolved through the memoized RouteCache and frozen for
  // this packet's lifetime.
  Result<PacketId> send(FlowId flow, PacketHeader header, Bytes payload);

  // Registers a handler invoked when a node receives a packet addressed
  // to it.  One handler per node; a later call replaces the earlier one.
  Status set_receive_handler(NodeId node, ReceiveHandler handler);

  // Attaches a tap to a link; all taps fire for every traversal.
  Status add_link_tap(LinkId link, TapFn tap);
  // Attaches a tap to every link incident to `node` (an "ISP tap" on
  // everything entering/leaving the node).
  Status add_node_tap(NodeId node, TapFn tap);

  // --- simulation control --------------------------------------------
  EventQueue& clock() noexcept { return events_; }
  void run() { events_.run(); }
  void run_until(SimTime t) { events_.run_until(t); }
  [[nodiscard]] SimTime now() const noexcept { return events_.now(); }

  // --- statistics -----------------------------------------------------
  [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t packets_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t packets_dropped() const noexcept {
    return dropped_;
  }

  // Computes the BFS path from `src`; exposed for tests.  send() uses
  // the memoized RouteCache, which reproduces these paths exactly.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId src, NodeId dst) const;

  // --- introspection (tests, A-NETSIM gate) ---------------------------
  [[nodiscard]] const RouteCache& route_cache() const noexcept {
    return routes_;
  }
  [[nodiscard]] const PacketStore& packet_store() const noexcept {
    return store_;
  }
  [[nodiscard]] std::size_t link_tap_entries() const noexcept {
    return link_taps_.size();
  }
  [[nodiscard]] std::size_t busy_link_entries() const noexcept {
    return link_busy_until_.size();
  }

 private:
  [[nodiscard]] bool valid_node(NodeId id) const noexcept {
    return id.valid() && id.value() < nodes_.size();
  }
  [[nodiscard]] bool valid_link(LinkId id) const noexcept {
    return id.valid() && id.value() < links_.size();
  }

  void deliver_hop(PacketStore::Ref ref, RouteCache::PathRef route,
                   std::uint32_t pos);
  // Releases a packet's slot and its route reference (delivery or drop).
  void retire(PacketStore::Ref ref, RouteCache::PathRef route) noexcept;

  std::vector<NodeInfo> nodes_;
  std::vector<LinkInfo> links_;
  AdjacencyList adjacency_;
  std::unordered_map<NodeId, ReceiveHandler> handlers_;
  std::unordered_map<LinkId, std::vector<TapFn>> link_taps_;
  // FIFO transmitter state for bandwidth-limited links.
  std::unordered_map<LinkId, SimTime> link_busy_until_;

  EventQueue events_;
  Rng rng_;
  IdGenerator<PacketId> packet_ids_;
  PacketStore store_;
  RouteCache routes_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace lexfor::netsim
