// Discrete-event simulation core.
//
// A single-threaded event queue ordered by (time, sequence).  The
// sequence number makes simultaneous events fire in scheduling order, so
// runs are exactly reproducible.  All simulators in LexForensica (the
// packet network, the P2P overlay, the onion-routing network) share this
// engine.
//
// ISSUE 8 rebuilt the implementation data-oriented.  The original queue
// (retained verbatim as HeapEventQueue, the test oracle) was a binary
// heap of std::function entries and collapsed 12.7M -> 2.7M events/s as
// the queue grew, for two compounding reasons:
//
//  1. `Entry e = heap_.top()` deep-copied the std::function — and every
//     captured packet payload and path vector — once per event
//     processed;
//  2. every push/pop sifted O(log n) entries through a cache-hostile
//     heap, touching ~log n scattered cache lines per event.
//
// The replacement is a calendar queue (Brown 1988): a circular wheel of
// `bucket_count` buckets, each `width_us` of simulated time wide, with
// a cursor sweeping the wheel in time order.  Each bucket is a vector
// kept sorted by (time, seq) and consumed through a head index, so in
// the common append-at-the-back / pop-at-the-front regime both
// operations are O(1) and touch one warm cache line.  Callbacks are
// util::SmallFn — move-only, small-buffer — so dequeuing MOVES the
// callback out of the bucket; nothing is ever deep-copied.  The wheel
// doubles when average occupancy exceeds 2 and halves when it falls
// under 1/8, re-estimating the bucket width from the live events'
// average inter-event gap, which keeps scheduling O(1) amortized from
// 16 events to millions (the A-NETSIM gate holds events/s at 1M queued
// events to >= 0.8x the 1k rate).
//
// Ordering contract (identical to the oracle, property-tested in
// tests/netsim/event_queue_test.cpp): events fire in strict (time, seq)
// order; a bucket's sorted vector breaks time ties by seq; distinct
// times in the same wheel revolution map to disjoint windows swept in
// order; and an insert earlier than the cursor's current window pulls
// the cursor back, so a peeked-ahead cursor can never skip a newly
// scheduled event.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "util/sim_time.h"
#include "util/small_fn.h"

namespace lexfor::netsim {

class EventQueue {
 public:
  using Callback = util::SmallFn;

  // Schedules `cb` at absolute time `at`.  Events in the past are clamped
  // to "now" (they fire next).
  void schedule_at(SimTime at, Callback cb) {
    if (at < now_) at = now_;
    if (buckets_.empty()) init_wheel();
    insert(Entry{at.us, next_seq_++, std::move(cb)});
  }

  // Schedules `cb` after `delay` from the current time.
  void schedule_in(SimDuration delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  // Wheel introspection for tests and the A-NETSIM bench.
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::int64_t bucket_width_us() const noexcept {
    return width_us_;
  }

  // Runs the next event; returns false if none is pending.
  bool step() {
    if (size_ == 0) return false;
    LEXFOR_OBS_PROFILE("netsim.event.step");
    pop_and_fire(find_next_bucket());
    return true;
  }

  // Runs until the queue drains or `limit` events have been processed.
  void run(std::uint64_t limit = ~std::uint64_t{0}) {
    while (limit-- > 0 && step()) {
    }
  }

  // Runs all events with time <= `until`.  The clock advances to `until`
  // even if the queue drains earlier.
  void run_until(SimTime until) {
    while (size_ > 0) {
      // Peek: find_next_bucket positions the cursor on the next event,
      // so the step() below re-finds it in O(1).
      const std::size_t bi = find_next_bucket();
      if (buckets_[bi].items[buckets_[bi].head].at_us > until.us) break;
      step();
    }
    if (now_ < until) now_ = until;
  }

 private:
  struct Entry {
    std::int64_t at_us;
    std::uint64_t seq;
    Callback cb;
  };
  struct Bucket {
    std::vector<Entry> items;  // sorted by (at_us, seq) from `head` on
    std::size_t head = 0;      // consumed prefix; O(1) pop, capacity kept
  };

  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 21;

  [[nodiscard]] static bool entry_less(const Entry& a,
                                       const Entry& b) noexcept {
    if (a.at_us != b.at_us) return a.at_us < b.at_us;
    return a.seq < b.seq;
  }

  [[nodiscard]] std::size_t index_of(std::int64_t at_us) const noexcept {
    return static_cast<std::size_t>(at_us / width_us_) & mask_;
  }
  [[nodiscard]] std::int64_t window_end(std::int64_t at_us) const noexcept {
    return (at_us / width_us_ + 1) * width_us_;
  }

  void init_wheel() {
    buckets_.resize(kMinBuckets);
    mask_ = kMinBuckets - 1;
    width_us_ = 1;
    cursor_ = index_of(now_.us);
    cursor_top_us_ = window_end(now_.us);
  }

  void insert(Entry e) {
    // An event earlier than the cursor's current window pulls the cursor
    // back; otherwise a cursor that scanned ahead over empty buckets
    // could sweep past it and fire a later event first.
    if (e.at_us < cursor_top_us_ - width_us_) {
      cursor_ = index_of(e.at_us);
      cursor_top_us_ = window_end(e.at_us);
    }
    if (size_ == 0) {
      lo_us_ = hi_us_ = e.at_us;
    } else {
      lo_us_ = std::min(lo_us_, e.at_us);
      hi_us_ = std::max(hi_us_, e.at_us);
    }
    Bucket& b = buckets_[index_of(e.at_us)];
    if (b.items.empty() || entry_less(b.items.back(), e)) {
      b.items.push_back(std::move(e));  // common case: times ascend
    } else {
      const auto it = std::upper_bound(
          b.items.begin() + static_cast<std::ptrdiff_t>(b.head),
          b.items.end(), e, entry_less);
      b.items.insert(it, std::move(e));
    }
    ++size_;
    // Grow only while more buckets can still reduce collisions: past one
    // bucket per occupied time window, doubling just inflates the wheel
    // (the degenerate many-events-few-timestamps workload would otherwise
    // re-sort the whole queue at every doubling — the very collapse this
    // structure exists to fix).
    if (size_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets &&
        buckets_.size() < windows_spanned()) {
      rehash(buckets_.size() * 2);
    }
  }

  // Number of `width_us_`-wide time windows the live events span.  The
  // watermarks are refreshed from live entries at every rehash, so they
  // track the queue as the clock advances.
  [[nodiscard]] std::size_t windows_spanned() const noexcept {
    return static_cast<std::size_t>((hi_us_ - lo_us_) / width_us_) + 1;
  }

  // Locates the bucket holding the globally next (time, seq) event and
  // leaves the cursor parked on it.  Pre: size_ > 0.
  [[nodiscard]] std::size_t find_next_bucket() {
    // One revolution of the wheel: the cursor's window advances
    // `width_us_` per bucket, and a bucket's front event fires iff it
    // falls inside the current window (same wheel year).
    for (std::size_t n = 0; n <= mask_; ++n) {
      const Bucket& b = buckets_[cursor_];
      if (b.head < b.items.size() && b.items[b.head].at_us < cursor_top_us_) {
        return cursor_;
      }
      cursor_ = (cursor_ + 1) & mask_;
      cursor_top_us_ += width_us_;
    }
    // Nothing within a revolution (sparse queue / far-future gap): jump
    // the cursor straight to the global minimum.
    std::size_t best = 0;
    bool found = false;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const Bucket& b = buckets_[i];
      if (b.head >= b.items.size()) continue;
      if (!found || entry_less(b.items[b.head],
                               buckets_[best].items[buckets_[best].head])) {
        best = i;
        found = true;
      }
    }
    const std::int64_t at = buckets_[best].items[buckets_[best].head].at_us;
    cursor_ = best;
    cursor_top_us_ = window_end(at);
    return best;
  }

  void pop_and_fire(std::size_t bi) {
    Bucket& b = buckets_[bi];
    Entry e = std::move(b.items[b.head]);  // move, never copy
    if (++b.head == b.items.size()) {
      b.items.clear();  // capacity retained for the next revolution
      b.head = 0;
    }
    --size_;
    now_ = SimTime::from_us(e.at_us);
    ++processed_;
    LEXFOR_OBS_COUNTER_ADD("netsim.events_processed", 1);
    LEXFOR_OBS_GAUGE_SET("netsim.queue_depth",
                         static_cast<std::int64_t>(size_));
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 8) {
      rehash(buckets_.size() / 2);
    }
    e.cb();
  }

  // Rebuilds the wheel at `new_count` buckets, re-estimating the bucket
  // width from the live events' average inter-event gap.
  void rehash(std::size_t new_count) {
    std::vector<Entry> all;
    all.reserve(size_);
    for (Bucket& b : buckets_) {
      for (std::size_t i = b.head; i < b.items.size(); ++i) {
        all.push_back(std::move(b.items[i]));
      }
      b.items.clear();
      b.head = 0;
    }
    buckets_.resize(new_count);
    mask_ = new_count - 1;
    if (all.size() >= 2) {
      std::int64_t lo = all.front().at_us;
      std::int64_t hi = lo;
      for (const Entry& e : all) {
        lo = std::min(lo, e.at_us);
        hi = std::max(hi, e.at_us);
      }
      const auto gap =
          (hi - lo) / static_cast<std::int64_t>(all.size() - 1);
      width_us_ = gap > 0 ? gap : 1;
      lo_us_ = lo;  // refresh the span watermarks from live entries
      hi_us_ = hi;
    }
    // Sorting first makes every per-bucket insert an append.
    std::sort(all.begin(), all.end(), entry_less);
    for (Entry& e : all) {
      buckets_[index_of(e.at_us)].items.push_back(std::move(e));
    }
    cursor_ = index_of(now_.us);
    cursor_top_us_ = window_end(now_.us);
  }

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;
  std::int64_t width_us_ = 1;
  std::int64_t lo_us_ = 0;  // min/max insert-time watermarks of live
  std::int64_t hi_us_ = 0;  // events; refreshed at each rehash
  std::size_t size_ = 0;
  std::size_t cursor_ = 0;          // bucket the sweep is parked on
  std::int64_t cursor_top_us_ = 0;  // exclusive end of the cursor's window
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace lexfor::netsim
