// Discrete-event simulation core.
//
// A single-threaded event queue ordered by (time, sequence).  The
// sequence number makes simultaneous events fire in scheduling order, so
// runs are exactly reproducible.  All simulators in LexForensica (the
// packet network, the P2P overlay, the onion-routing network) share this
// engine.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/obs.h"
#include "util/sim_time.h"

namespace lexfor::netsim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` at absolute time `at`.  Events in the past are clamped
  // to "now" (they fire next).
  void schedule_at(SimTime at, Callback cb) {
    if (at < now_) at = now_;
    heap_.push(Entry{at, next_seq_++, std::move(cb)});
  }

  // Schedules `cb` after `delay` from the current time.
  void schedule_in(SimDuration delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  // Runs the next event; returns false if none is pending.
  bool step() {
    if (heap_.empty()) return false;
    LEXFOR_OBS_PROFILE("netsim.event.step");
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.at;
    ++processed_;
    LEXFOR_OBS_COUNTER_ADD("netsim.events_processed", 1);
    LEXFOR_OBS_GAUGE_SET("netsim.queue_depth",
                         static_cast<std::int64_t>(heap_.size()));
    e.cb();
    return true;
  }

  // Runs until the queue drains or `limit` events have been processed.
  void run(std::uint64_t limit = ~std::uint64_t{0}) {
    while (limit-- > 0 && step()) {
    }
  }

  // Runs all events with time <= `until`.  The clock advances to `until`
  // even if the queue drains earlier.
  void run_until(SimTime until) {
    while (!heap_.empty() && heap_.top().at <= until) step();
    if (now_ < until) now_ = until;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return b.at < a.at;
      return b.seq < a.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace lexfor::netsim
