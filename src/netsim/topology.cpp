#include "netsim/topology.h"

#include "util/rng.h"

namespace lexfor::netsim {

CampusTopology make_campus(Network& net, std::size_t hosts,
                           LinkConfig backbone, LinkConfig access) {
  CampusTopology t;
  t.internet = net.add_node("internet");
  t.isp = net.add_node("isp");
  t.gateway = net.add_node("campus-gateway");
  (void)net.connect(t.internet, t.isp, backbone);
  (void)net.connect(t.isp, t.gateway, backbone);
  t.hosts.reserve(hosts);
  for (std::size_t i = 0; i < hosts; ++i) {
    const NodeId h = net.add_node("host-" + std::to_string(i));
    (void)net.connect(t.gateway, h, access);
    t.hosts.push_back(h);
  }
  return t;
}

StarTopology make_star(Network& net, std::size_t leaves, LinkConfig link) {
  StarTopology t;
  t.hub = net.add_node("hub");
  t.leaves.reserve(leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    const NodeId leaf = net.add_node("leaf-" + std::to_string(i));
    (void)net.connect(t.hub, leaf, link);
    t.leaves.push_back(leaf);
  }
  return t;
}

std::vector<NodeId> make_tree(Network& net, std::size_t fanout,
                              std::size_t depth, LinkConfig link) {
  std::vector<NodeId> nodes;
  nodes.push_back(net.add_node("tree-0"));
  std::size_t level_start = 0;
  std::size_t level_size = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    const std::size_t next_start = nodes.size();
    for (std::size_t i = 0; i < level_size; ++i) {
      const NodeId parent = nodes[level_start + i];
      for (std::size_t c = 0; c < fanout; ++c) {
        const NodeId child =
            net.add_node("tree-" + std::to_string(nodes.size()));
        (void)net.connect(parent, child, link);
        nodes.push_back(child);
      }
    }
    level_start = next_start;
    level_size = nodes.size() - next_start;
  }
  return nodes;
}

std::vector<NodeId> make_random(Network& net, std::size_t n,
                                double edge_probability, std::uint64_t seed,
                                LinkConfig link) {
  Rng rng(seed);
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(net.add_node("er-" + std::to_string(i)));
  }
  // Spanning chain keeps it connected.
  for (std::size_t i = 1; i < n; ++i) {
    (void)net.connect(nodes[i - 1], nodes[i], link);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {  // chain covers j == i+1
      if (rng.bernoulli(edge_probability)) {
        (void)net.connect(nodes[i], nodes[j], link);
      }
    }
  }
  return nodes;
}

}  // namespace lexfor::netsim
