// Packets: the unit of traffic in the network simulator.
//
// A packet cleanly separates HEADER (addressing / non-content: source,
// destination, ports, protocol, size) from PAYLOAD (content).  This is
// the boundary the Pen/Trap and Wiretap statutes draw, and the capture
// module enforces it: a pen-register tap sees only the header, a Title
// III tap sees the whole packet.

#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lexfor::netsim {

enum class Protocol : std::uint8_t { kTcp = 6, kUdp = 17 };

// Non-content addressing information (what a pen/trap device may record).
struct PacketHeader {
  NodeId src;
  NodeId dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol protocol = Protocol::kTcp;
  std::uint32_t payload_size = 0;  // size is non-content under Pen/Trap
};

struct Packet {
  PacketId id;
  FlowId flow;
  PacketHeader header;
  Bytes payload;       // content (Title III territory)
  SimTime created_at;  // when the source emitted it

  [[nodiscard]] std::size_t wire_size() const noexcept {
    // 40 bytes of simulated L3/L4 header overhead.
    return payload.size() + 40;
  }
};

}  // namespace lexfor::netsim
