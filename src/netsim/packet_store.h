// PacketStore: SoA pool for in-flight packets.
//
// The pre-ISSUE-8 simulator moved whole Packet values (header + payload
// Bytes) into every hop closure, and the event queue's per-event copy
// then deep-copied them once per event.  PacketStore keeps each
// in-flight packet in ONE pooled slot, split structure-of-arrays along
// the boundary the statutes draw (see netsim/packet.h): the addressing
// record (id, flow, header, timestamps — what a pen/trap device may
// see) in one dense array, the content payload in a parallel array.
// Hop callbacks capture only the 32-bit slot handle; the routing loop
// touches the meta array alone and never drags payload bytes through
// the cache.
//
// Slots recycle through util::Pool semantics (LIFO freelist, handles
// not pointers) and a released slot keeps its payload buffer's
// capacity, so a steady-state flow allocates nothing per packet.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "netsim/packet.h"
#include "util/bytes.h"

namespace lexfor::netsim {

class PacketStore {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kNull = ~Ref{0};

  // The addressing plane of a packet: everything except content.
  struct Meta {
    PacketId id;
    FlowId flow;
    PacketHeader header;
    SimTime created_at;

    [[nodiscard]] std::size_t wire_size() const noexcept {
      // 40 bytes of simulated L3/L4 header overhead (see Packet).
      return static_cast<std::size_t>(header.payload_size) + 40;
    }
  };

  // Acquires a slot; the caller fills meta() and payload().  The slot's
  // previous payload buffer (capacity included) is handed back for
  // reuse.
  [[nodiscard]] Ref acquire() {
    if (!free_.empty()) {
      const Ref r = free_.back();
      free_.pop_back();
      ++live_;
      return r;
    }
    metas_.emplace_back();
    payloads_.emplace_back();
    ++live_;
    return static_cast<Ref>(metas_.size() - 1);
  }

  // Releases a slot back to the pool.  The payload's contents are
  // logically dead but its heap capacity is retained.
  void release(Ref r) noexcept {
    payloads_[r].clear();
    free_.push_back(r);
    --live_;
  }

  [[nodiscard]] Meta& meta(Ref r) noexcept { return metas_[r]; }
  [[nodiscard]] const Meta& meta(Ref r) const noexcept { return metas_[r]; }
  [[nodiscard]] Bytes& payload(Ref r) noexcept { return payloads_[r]; }
  [[nodiscard]] const Bytes& payload(Ref r) const noexcept {
    return payloads_[r];
  }

  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return metas_.size(); }

  // Assembles the classic Packet view for handler/tap callbacks without
  // copying content: the payload is moved into the view for the call
  // and moved back after.  The view is only valid inside `fn`.
  template <typename Fn>
  void with_packet(Ref r, Fn&& fn) {
    const Meta& m = metas_[r];
    Packet view;
    view.id = m.id;
    view.flow = m.flow;
    view.header = m.header;
    view.created_at = m.created_at;
    view.payload = std::move(payloads_[r]);
    fn(static_cast<const Packet&>(view));
    payloads_[r] = std::move(view.payload);
  }

 private:
  std::vector<Meta> metas_;    // SoA: addressing plane
  std::vector<Bytes> payloads_;  // SoA: content plane
  std::vector<Ref> free_;
  std::size_t live_ = 0;
};

}  // namespace lexfor::netsim
