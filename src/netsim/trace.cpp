#include "netsim/trace.h"

#include "crypto/crc32.h"

namespace lexfor::netsim {
namespace {

constexpr std::uint32_t kMagic = 0x4C584654;  // "LXFT"
constexpr std::uint16_t kVersion = 1;

}  // namespace

Bytes Trace::serialize() const {
  Bytes out;
  append_u32(out, kMagic);
  append_u16(out, kVersion);
  append_u32(out, static_cast<std::uint32_t>(records_.size()));
  for (const auto& r : records_) {
    append_u64(out, static_cast<std::uint64_t>(r.at.us));
    append_u64(out, r.header.src.value());
    append_u64(out, r.header.dst.value());
    append_u16(out, r.header.src_port);
    append_u16(out, r.header.dst_port);
    out.push_back(static_cast<std::uint8_t>(r.header.protocol));
    append_u32(out, r.header.payload_size);
    out.push_back(r.payload.has_value() ? 1 : 0);
    if (r.payload.has_value()) {
      append_u32(out, static_cast<std::uint32_t>(r.payload->size()));
      out.insert(out.end(), r.payload->begin(), r.payload->end());
    }
  }
  append_u32(out, crypto::crc32(out));
  return out;
}

Result<Trace> Trace::deserialize(const Bytes& data) {
  if (data.size() < 14) return InvalidArgument("trace: truncated header");

  // CRC check first: the last 4 bytes cover everything before them.
  const std::uint32_t stored_crc = read_u32(data, data.size() - 4);
  const std::uint32_t computed =
      crypto::crc32(data.data(), data.size() - 4);
  if (stored_crc != computed) {
    return FailedPrecondition("trace: CRC mismatch (corrupted or tampered)");
  }

  std::size_t pos = 0;
  if (read_u32(data, pos) != kMagic) {
    return InvalidArgument("trace: bad magic");
  }
  pos += 4;
  const std::uint16_t version = read_u16(data, pos);
  pos += 2;
  if (version != kVersion) {
    return InvalidArgument("trace: unsupported version " +
                           std::to_string(version));
  }
  const std::uint32_t count = read_u32(data, pos);
  pos += 4;

  const std::size_t body_end = data.size() - 4;
  Trace trace;
  for (std::uint32_t i = 0; i < count; ++i) {
    // Fixed part: 8+8+8+2+2+1+4+1 = 34 bytes.
    if (pos + 34 > body_end) return InvalidArgument("trace: truncated record");
    TraceRecord r;
    r.at = SimTime::from_us(static_cast<std::int64_t>(read_u64(data, pos)));
    pos += 8;
    r.header.src = NodeId{read_u64(data, pos)};
    pos += 8;
    r.header.dst = NodeId{read_u64(data, pos)};
    pos += 8;
    r.header.src_port = read_u16(data, pos);
    pos += 2;
    r.header.dst_port = read_u16(data, pos);
    pos += 2;
    r.header.protocol = static_cast<Protocol>(data[pos]);
    pos += 1;
    r.header.payload_size = read_u32(data, pos);
    pos += 4;
    const bool has_payload = data[pos] != 0;
    pos += 1;
    if (has_payload) {
      if (pos + 4 > body_end) return InvalidArgument("trace: truncated length");
      const std::uint32_t len = read_u32(data, pos);
      pos += 4;
      if (pos + len > body_end) {
        return InvalidArgument("trace: truncated payload");
      }
      r.payload = Bytes(data.begin() + static_cast<std::ptrdiff_t>(pos),
                        data.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    }
    trace.add(std::move(r));
  }
  if (pos != body_end) {
    return InvalidArgument("trace: trailing bytes after records");
  }
  return trace;
}

std::uint64_t Trace::payload_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : records_) {
    if (r.payload.has_value()) total += r.payload->size();
  }
  return total;
}

}  // namespace lexfor::netsim
