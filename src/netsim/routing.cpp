#include "netsim/routing.h"

#include <algorithm>

namespace lexfor::netsim {
namespace {

// Node ids are dense vector indices, so they fit 32 bits in any
// simulation this side of 4 billion nodes; the pair key packs both.
[[nodiscard]] std::uint64_t pair_key(NodeId src, NodeId dst) noexcept {
  return (src.value() << 32) | (dst.value() & 0xFFFFFFFFull);
}

}  // namespace

RouteCache::PathRef RouteCache::acquire(NodeId src, NodeId dst,
                                        const AdjacencyList& adj) {
  const std::uint64_t key = pair_key(src, dst);
  const auto it = lookup_.find(key);
  if (it != lookup_.end()) {
    if (it->second != kNull) add_ref(it->second);
    return it->second;
  }

  const Tree& tree = tree_for(src, adj);
  if (dst.value() >= tree.nodes || tree.seen[dst.value()] == 0) {
    lookup_.emplace(key, kNull);
    return kNull;
  }

  const PathRef p = paths_.acquire();
  PathRec& rec = paths_[p];
  rec.hops.clear();  // slot recycled: capacity retained, contents stale
  rec.hops.push_back(dst);
  NodeId cur = dst;
  while (cur != src) {
    cur = tree.parent[cur.value()];
    rec.hops.push_back(cur);
  }
  std::reverse(rec.hops.begin(), rec.hops.end());
  rec.refs = 2;  // one for the lookup table, one for the caller
  lookup_.emplace(key, p);
  return p;
}

void RouteCache::add_ref(PathRef p) noexcept { ++paths_[p].refs; }

void RouteCache::release(PathRef p) noexcept {
  if (p == kNull) return;
  if (--paths_[p].refs == 0) paths_.release(p);
}

void RouteCache::invalidate() {
  for (const auto& [key, p] : lookup_) {
    if (p != kNull) release(p);
  }
  lookup_.clear();
  trees_.clear();
  arena_.reset();
}

const RouteCache::Tree& RouteCache::tree_for(NodeId src,
                                             const AdjacencyList& adj) {
  const auto it = trees_.find(src.value());
  if (it != trees_.end()) return it->second;
  if (trees_.size() >= kMaxTrees) invalidate();

  const std::size_t n = adj.size();
  Tree tree;
  tree.nodes = n;
  tree.parent = arena_.alloc_array<NodeId>(n);
  tree.seen = arena_.alloc_array<std::uint8_t>(n);
  std::fill(tree.seen, tree.seen + n, std::uint8_t{0});

  // Full BFS from src.  Identical discovery order to
  // Network::shortest_path: FIFO frontier, adjacency order, parent =
  // first discoverer — so a path read off this tree matches the path
  // the per-packet BFS used to build, node for node.
  frontier_.clear();
  frontier_.push_back(src);
  tree.seen[src.value()] = 1;
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    const NodeId u = frontier_[i];
    for (const Adjacency& a : adj[u.value()]) {
      if (tree.seen[a.neighbor.value()] != 0) continue;
      tree.seen[a.neighbor.value()] = 1;
      tree.parent[a.neighbor.value()] = u;
      frontier_.push_back(a.neighbor);
    }
  }
  ++bfs_runs_;
  return trees_.emplace(src.value(), tree).first->second;
}

}  // namespace lexfor::netsim
