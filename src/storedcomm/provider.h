// Stored-communications provider simulator (§III.A.3 of the paper).
//
// Models the ECS/RCS lifecycle the paper walks through with Alice and
// Bob: a message delivered to a provider sits in ECS "electronic
// storage" awaiting retrieval; once opened, a PUBLIC provider (Gmail)
// becomes an RCS for it, while a NON-public provider (the university
// server) becomes neither — the message falls out of the SCA and only
// the Fourth Amendment governs.  Compelled disclosure (§2703) and
// voluntary disclosure (§2702) are implemented against this
// classification.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "legal/authority.h"
#include "legal/engine.h"
#include "legal/types.h"
#include "util/bytes.h"
#include "util/ids.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace lexfor::storedcomm {

enum class ProviderPublicity { kPublic, kNonPublic };

struct SubscriberInfo {
  std::string name;
  std::string street_address;
  std::string payment_record;
};

struct Account {
  AccountId id;
  std::string address;  // "bob@gmail.com"
  SubscriberInfo subscriber;
};

enum class MessageState { kAwaitingRetrieval, kOpened, kDeleted };

struct StoredMessage {
  MessageId id;
  AccountId owner;
  std::string from;
  std::string to;
  std::string subject;
  Bytes body;
  SimTime arrived_at;
  std::optional<SimTime> opened_at;
  MessageState state = MessageState::kAwaitingRetrieval;
  // Set when the user deleted the message while a § 2703(f) preservation
  // hold was active: gone from the mailbox, retained for the government.
  bool retained_under_hold = false;
};

// What a legal process may compel from a provider (§2703's ladder).
enum class DisclosureKind {
  kBasicSubscriber,       // name, address, payment: subpoena
  kTransactionalRecords,  // logs, session records: 2703(d) order
  kContent,               // message bodies: warrant
};

struct DisclosureResult {
  DisclosureKind kind;
  // Populated according to kind.
  std::optional<SubscriberInfo> subscriber;
  std::vector<std::string> transaction_log;
  std::vector<StoredMessage> messages;
  // The legal basis the provider verified before disclosing.
  legal::ProcessKind process_used = legal::ProcessKind::kNone;
};

class Provider {
 public:
  Provider(std::string name, ProviderPublicity publicity)
      : name_(std::move(name)), publicity_(publicity) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ProviderPublicity publicity() const noexcept {
    return publicity_;
  }

  // --- account & message lifecycle -----------------------------------
  AccountId create_account(std::string address, SubscriberInfo subscriber);
  [[nodiscard]] std::optional<Account> find_account(
      const std::string& address) const;

  // Delivers a message into the addressee's mailbox (ECS storage).
  Result<MessageId> deliver(const std::string& to, std::string from,
                            std::string subject, Bytes body, SimTime now);

  // The addressee retrieves/opens the message.
  Status open_message(MessageId id, SimTime now);
  // Deletes at time `now` (default: before any hold could exist).
  Status delete_message(MessageId id, SimTime now = SimTime::zero());

  [[nodiscard]] const StoredMessage* find_message(MessageId id) const;
  [[nodiscard]] std::vector<MessageId> mailbox(AccountId account) const;

  // --- SCA classification ---------------------------------------------
  // The provider's role WITH RESPECT TO this message, per the paper's
  // walk-through.  kEcs while awaiting retrieval; after opening, kRcs
  // for a public provider, kNonPublic (neither ECS nor RCS) otherwise.
  [[nodiscard]] legal::ProviderClass classify(MessageId id) const;

  // The minimum process to compel this disclosure, as determined by the
  // compliance engine on the equivalent scenario.
  [[nodiscard]] legal::Determination required_process(DisclosureKind kind,
                                                      MessageId message) const;

  // --- disclosure ------------------------------------------------------
  // § 2703 compelled disclosure: verifies the presented authority against
  // the requirement before handing anything over.
  Result<DisclosureResult> compelled_disclosure(
      DisclosureKind kind, AccountId account,
      const legal::GrantedAuthority& authority, SimTime now) const;

  // § 2702 voluntary disclosure to the government: a PUBLIC provider may
  // not volunteer customer content or records absent an emergency or
  // consent; a non-public provider may disclose freely.
  Result<DisclosureResult> voluntary_disclosure_to_government(
      DisclosureKind kind, AccountId account, bool emergency,
      bool user_consent) const;

  // Transaction log visible under a 2703(d) order.
  void log_transaction(AccountId account, std::string entry);

  // § 2703(f) preservation request: requires NO process — a government
  // letter obligates the provider to preserve the account's existing
  // records for 90 days (renewable).  While the hold is active, user
  // deletions remove messages from the mailbox but the provider retains
  // them for later compelled disclosure.
  Status preservation_request(AccountId account, SimTime now,
                              SimDuration duration = SimDuration::from_sec(
                                  90.0 * 24.0 * 3600.0));
  [[nodiscard]] bool preservation_active(AccountId account, SimTime now) const;

 private:
  [[nodiscard]] MessageId most_recent_message(AccountId account) const;
  DisclosureResult build_disclosure(DisclosureKind kind, AccountId account,
                                    legal::ProcessKind used) const;

  // delete_message needs the current time to honor preservation holds;
  // callers pass it explicitly.
  std::string name_;
  ProviderPublicity publicity_;
  std::vector<Account> accounts_;
  std::vector<StoredMessage> messages_;
  std::unordered_map<AccountId, SimTime> holds_;  // account -> hold expiry
  std::unordered_map<AccountId, std::vector<std::string>> transactions_;
  IdGenerator<AccountId> account_ids_;
  IdGenerator<MessageId> message_ids_;
};

}  // namespace lexfor::storedcomm
