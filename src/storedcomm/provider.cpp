#include "storedcomm/provider.h"

#include <algorithm>

namespace lexfor::storedcomm {

AccountId Provider::create_account(std::string address,
                                   SubscriberInfo subscriber) {
  const AccountId id = account_ids_.next();
  accounts_.push_back(Account{id, std::move(address), std::move(subscriber)});
  return id;
}

std::optional<Account> Provider::find_account(const std::string& address) const {
  const auto it =
      std::find_if(accounts_.begin(), accounts_.end(),
                   [&](const Account& a) { return a.address == address; });
  if (it == accounts_.end()) return std::nullopt;
  return *it;
}

Result<MessageId> Provider::deliver(const std::string& to, std::string from,
                                    std::string subject, Bytes body,
                                    SimTime now) {
  const auto account = find_account(to);
  if (!account) return NotFound("deliver: no account " + to);

  StoredMessage m;
  m.id = message_ids_.next();
  m.owner = account->id;
  m.from = std::move(from);
  m.to = to;
  m.subject = std::move(subject);
  m.body = std::move(body);
  m.arrived_at = now;
  const MessageId id = m.id;
  messages_.push_back(std::move(m));
  return id;
}

Status Provider::open_message(MessageId id, SimTime now) {
  for (auto& m : messages_) {
    if (m.id == id) {
      if (m.state == MessageState::kDeleted) {
        return FailedPrecondition("open_message: message was deleted");
      }
      m.state = MessageState::kOpened;
      if (!m.opened_at) m.opened_at = now;
      return Status::Ok();
    }
  }
  return NotFound("open_message: unknown message");
}

Status Provider::delete_message(MessageId id, SimTime now) {
  for (auto& m : messages_) {
    if (m.id == id) {
      m.state = MessageState::kDeleted;
      // A 2703(f) hold keeps a provider-side copy despite the deletion.
      if (preservation_active(m.owner, now)) m.retained_under_hold = true;
      return Status::Ok();
    }
  }
  return NotFound("delete_message: unknown message");
}

Status Provider::preservation_request(AccountId account, SimTime now,
                                      SimDuration duration) {
  const bool known = std::any_of(accounts_.begin(), accounts_.end(),
                                 [&](const Account& a) { return a.id == account; });
  if (!known) return NotFound("preservation_request: unknown account");
  holds_[account] = now + duration;
  return Status::Ok();
}

bool Provider::preservation_active(AccountId account, SimTime now) const {
  const auto it = holds_.find(account);
  return it != holds_.end() && now <= it->second;
}

const StoredMessage* Provider::find_message(MessageId id) const {
  for (const auto& m : messages_) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

std::vector<MessageId> Provider::mailbox(AccountId account) const {
  std::vector<MessageId> out;
  for (const auto& m : messages_) {
    if (m.owner == account && m.state != MessageState::kDeleted) {
      out.push_back(m.id);
    }
  }
  return out;
}

legal::ProviderClass Provider::classify(MessageId id) const {
  const auto* m = find_message(id);
  if (m == nullptr) return legal::ProviderClass::kNotAProvider;
  switch (m->state) {
    case MessageState::kAwaitingRetrieval:
      // Unretrieved mail is in ECS electronic storage on any provider.
      return legal::ProviderClass::kEcs;
    case MessageState::kOpened:
      // Opened mail: a public provider stores it as an RCS; a non-public
      // provider is neither ECS nor RCS for it (Andersen Consulting).
      return publicity_ == ProviderPublicity::kPublic
                 ? legal::ProviderClass::kRcs
                 : legal::ProviderClass::kNonPublic;
    case MessageState::kDeleted:
      return legal::ProviderClass::kNotAProvider;
  }
  return legal::ProviderClass::kNotAProvider;
}

legal::Determination Provider::required_process(DisclosureKind kind,
                                                MessageId message) const {
  // Records (subscriber/transactional) are about the account, not any one
  // message: the provider-level classification applies.  Content follows
  // the per-message lifecycle; when no message is identified we fall back
  // to the provider-level class.
  const legal::ProviderClass provider_level =
      publicity_ == ProviderPublicity::kPublic ? legal::ProviderClass::kEcs
                                               : legal::ProviderClass::kNonPublic;
  legal::ProviderClass cls = provider_level;
  if (kind == DisclosureKind::kContent && find_message(message) != nullptr) {
    cls = classify(message);
  }

  legal::Scenario s;
  s.named("compelled disclosure from provider '" + name_ + "'")
      .located(legal::DataState::kStoredAtProvider)
      .when(legal::Timing::kStored)
      .at_provider(cls);
  switch (kind) {
    case DisclosureKind::kBasicSubscriber:
      s.acquiring(legal::DataKind::kSubscriberRecords);
      break;
    case DisclosureKind::kTransactionalRecords:
      s.acquiring(legal::DataKind::kTransactionalRecords);
      break;
    case DisclosureKind::kContent: {
      s.acquiring(legal::DataKind::kContent);
      const auto* m = find_message(message);
      if (m != nullptr && m->state == MessageState::kOpened) s.opened();
      break;
    }
  }
  return legal::ComplianceEngine{}.evaluate(s);
}

MessageId Provider::most_recent_message(AccountId account) const {
  MessageId latest;
  for (const auto& m : messages_) {
    if (m.owner == account && m.state != MessageState::kDeleted) latest = m.id;
  }
  return latest;
}

DisclosureResult Provider::build_disclosure(DisclosureKind kind,
                                            AccountId account,
                                            legal::ProcessKind used) const {
  DisclosureResult out;
  out.kind = kind;
  out.process_used = used;
  switch (kind) {
    case DisclosureKind::kBasicSubscriber:
      for (const auto& a : accounts_) {
        if (a.id == account) out.subscriber = a.subscriber;
      }
      break;
    case DisclosureKind::kTransactionalRecords: {
      const auto it = transactions_.find(account);
      if (it != transactions_.end()) out.transaction_log = it->second;
      break;
    }
    case DisclosureKind::kContent:
      for (const auto& m : messages_) {
        const bool live = m.state != MessageState::kDeleted;
        // Messages deleted under a preservation hold are still disclosed.
        if (m.owner == account && (live || m.retained_under_hold)) {
          out.messages.push_back(m);
        }
      }
      break;
  }
  return out;
}

Result<DisclosureResult> Provider::compelled_disclosure(
    DisclosureKind kind, AccountId account,
    const legal::GrantedAuthority& authority, SimTime now) const {
  // Verify the account exists.
  const bool known = std::any_of(accounts_.begin(), accounts_.end(),
                                 [&](const Account& a) { return a.id == account; });
  if (!known) return NotFound("compelled_disclosure: unknown account");

  // Determine the requirement from the strictest covered message (for
  // content) or the record kind (for records).
  const MessageId probe = most_recent_message(account);
  const legal::Determination det = required_process(kind, probe);

  const legal::DataKind data_kind =
      kind == DisclosureKind::kContent
          ? legal::DataKind::kContent
          : (kind == DisclosureKind::kBasicSubscriber
                 ? legal::DataKind::kSubscriberRecords
                 : legal::DataKind::kTransactionalRecords);

  const Status permitted =
      authority.permits(det.required_process, data_kind, name_, now);
  if (!permitted.ok()) return permitted;

  return build_disclosure(kind, account, authority.kind());
}

Result<DisclosureResult> Provider::voluntary_disclosure_to_government(
    DisclosureKind kind, AccountId account, bool emergency,
    bool user_consent) const {
  const bool known = std::any_of(accounts_.begin(), accounts_.end(),
                                 [&](const Account& a) { return a.id == account; });
  if (!known) return NotFound("voluntary_disclosure: unknown account");

  // § 2702: a provider to the public may not voluntarily disclose
  // customer content or records to the government, except with the
  // user's consent or in an emergency.  Non-public providers may
  // disclose freely.
  if (publicity_ == ProviderPublicity::kPublic && !emergency && !user_consent) {
    return PermissionDenied(
        "SCA 2702 bars a public provider from voluntarily disclosing "
        "customer information to the government absent consent or an "
        "emergency");
  }
  return build_disclosure(kind, account, legal::ProcessKind::kNone);
}

void Provider::log_transaction(AccountId account, std::string entry) {
  transactions_[account].push_back(std::move(entry));
}

}  // namespace lexfor::storedcomm
