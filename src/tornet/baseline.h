// Passive flow-correlation baseline.
//
// The classical alternative to active watermarking (§IV.B's "other
// methods"): record the traffic-rate series at BOTH ends — the seized
// server and each candidate client's ISP — and match flows by Pearson
// correlation of their natural rate fluctuations.  No modulation is
// injected, but the investigator must observe both sides for the whole
// window, and natural Poisson fluctuation is a much weaker signal than
// a designed PN mark.  run_baseline_comparison() pits the two
// techniques against each other on identical network conditions.

#pragma once

#include <vector>

#include "tornet/traceback.h"

namespace lexfor::tornet {

struct PassiveConfig {
  TorConfig network;
  double window_sec = 0.5;       // rate-sampling window
  double observe_sec = 200.0;    // total observation time
  double base_rate_pps = 120.0;
  std::size_t num_decoys = 8;
  std::uint64_t seed = 7;
};

struct PassiveResult {
  // Correlation of the server-side series with each candidate client
  // (suspect first, then decoys).
  std::vector<double> correlations;
  bool identified_correctly = false;  // argmax is the suspect
  double margin = 0.0;                // suspect corr minus best decoy corr
};

// Runs the passive attack: one marked... no — one *observed* server flow
// to the suspect, `num_decoys` independent flows to other clients, all
// carried through the anonymity network.  Returns per-candidate
// correlations against the server-side series.
[[nodiscard]] Result<PassiveResult> run_passive_correlation(
    const PassiveConfig& config);

// Head-to-head comparison at matched observation time: the watermark
// experiment observes for code_length * chip duration; the passive
// attack gets the same wall-clock window.
struct ComparisonResult {
  double watermark_success_rate = 0.0;  // suspect detected, no decoy FP
  double passive_success_rate = 0.0;    // suspect is argmax correlation
  double observation_sec = 0.0;
  int trials = 0;
};

[[nodiscard]] Result<ComparisonResult> run_baseline_comparison(
    const TracebackConfig& watermark_config, int trials);

}  // namespace lexfor::tornet
