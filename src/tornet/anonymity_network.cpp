#include "tornet/anonymity_network.h"

#include <algorithm>
#include <functional>

namespace lexfor::tornet {

Result<Circuit> AnonymityNetwork::build_circuit(Rng& rng) const {
  if (static_cast<std::size_t>(config_.circuit_length) > config_.num_relays) {
    return InvalidArgument(
        "build_circuit: circuit longer than the relay population");
  }
  Circuit c;
  static IdGenerator<CircuitId> ids;  // process-wide unique circuit ids
  c.id = ids.next();
  // Sample distinct relays.
  std::vector<std::size_t> pool(config_.num_relays);
  for (std::size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  rng.shuffle(pool);
  c.relays.assign(pool.begin(), pool.begin() + config_.circuit_length);
  return c;
}

std::vector<double> AnonymityNetwork::transit(
    const Circuit& circuit, const std::vector<double>& send_sec,
    Rng& rng) const {
  std::vector<double> arrivals;
  arrivals.reserve(send_sec.size());
  const double hops = static_cast<double>(circuit.relays.size());
  for (const double t : send_sec) {
    double delay_ms = hops * config_.hop_latency_ms;
    for (std::size_t r = 0; r < circuit.relays.size(); ++r) {
      delay_ms += rng.exponential(config_.relay_jitter_ms);
      delay_ms += rng.uniform01() * config_.relay_batch_ms;
    }
    arrivals.push_back(t + delay_ms * 1e-3);
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

std::vector<double> generate_modulated_poisson(
    double base_rate, double t_end_sec, double max_multiplier,
    const std::function<double(double)>& multiplier, Rng& rng) {
  std::vector<double> out;
  if (base_rate <= 0.0 || t_end_sec <= 0.0) return out;
  const double lambda_max = base_rate * std::max(max_multiplier, 1.0);
  double t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / lambda_max);
    if (t >= t_end_sec) break;
    const double lam = multiplier ? base_rate * multiplier(t) : base_rate;
    if (rng.uniform01() < lam / lambda_max) out.push_back(t);
  }
  return out;
}

std::vector<std::uint32_t> bin_arrivals(const std::vector<double>& arrivals_sec,
                                        double start_sec, double window_sec,
                                        std::size_t num_windows) {
  std::vector<std::uint32_t> bins(num_windows, 0);
  if (window_sec <= 0.0) return bins;
  for (const double a : arrivals_sec) {
    const double rel = a - start_sec;
    if (rel < 0.0) continue;
    const auto idx = static_cast<std::size_t>(rel / window_sec);
    if (idx < num_windows) ++bins[idx];
  }
  return bins;
}

}  // namespace lexfor::tornet
