// The §IV.B traceback experiment, end to end.
//
// Situation one from the paper: a seized web server hosts contraband;
// many clients reach it through an anonymity network.  With a court
// order (NOT a wiretap — only non-content rates are collected at the
// suspect's ISP), investigators modulate the server's transmission rate
// with a long PN code and look for the code in the per-client arrival
// rates.  The client whose rate despreads above threshold is the
// suspect.  Decoy flows (other clients, unmarked) measure the
// false-positive behaviour.

#pragma once

#include <vector>

#include "legal/engine.h"
#include "tornet/anonymity_network.h"
#include "watermark/dsss.h"

namespace lexfor::tornet {

struct TracebackConfig {
  TorConfig network;
  int pn_degree = 9;               // code length 2^degree - 1
  double chip_ms = 400.0;          // chip duration
  double depth = 0.35;             // rate modulation depth
  double base_rate_pps = 120.0;    // server flow rate toward each client
  std::size_t num_decoys = 8;      // concurrent unmarked client flows
  double threshold_sigmas = 5.0;
  std::uint64_t seed = 7;
  // Worker threads for the despread fan-out (suspect + decoys go
  // through one watermark::ScanBatch); 0 = hardware concurrency.  The
  // result is bit-identical for every thread count.  The simulation
  // phase gives flow i the counter-derived stream
  // Rng::sub_stream(seed, i), so a flow's packets do not depend on how
  // many other flows exist — Phase 1 is parallelizable without output
  // changes (see EXPERIMENTS.md for the one-time output shift this
  // re-seeding caused).
  unsigned detect_threads = 0;
  // Reference mode for run_streaming_traceback: simulate each candidate
  // flow in its OWN pass (sim_passes == flow count) instead of tapping
  // every candidate during one pass through stream::TapRegistry.  The
  // sub_stream re-seeding above makes the two modes bit-identical —
  // which the single-pass claim is tested and gated against.
  bool resimulate_per_suspect = false;
};

struct FlowVerdict {
  bool is_suspect = false;           // ground truth
  watermark::DetectionResult detection;
};

struct TracebackResult {
  std::vector<FlowVerdict> flows;    // suspect first, then decoys
  bool suspect_detected = false;
  std::size_t decoys_flagged = 0;
  double suspect_correlation = 0.0;
  double max_decoy_correlation = 0.0;
  // Legal posture of the collection step (non-content at the ISP): the
  // engine must report a court order suffices, matching §IV.B.
  legal::Determination collection_legality;
  // Simulation accounting for the streaming traceback's single-pass
  // claim: the TapRegistry path reports sim_passes == 1 for ANY number
  // of candidate flows; the resimulate_per_suspect reference loop
  // reports one pass per flow.  flows_simulated counts flows generated
  // across all passes (identical in both modes).  run_traceback also
  // fills these (always one pass).
  std::size_t sim_passes = 0;
  std::size_t flows_simulated = 0;
};

// The legal scenario for the collection side: real-time non-content rate
// observation at the suspect's ISP.
[[nodiscard]] legal::Scenario collection_scenario();

// Runs the full experiment: builds circuits, generates the marked flow
// and decoys, carries them through the network, bins arrivals at the
// "ISP", and despreads each candidate.
[[nodiscard]] Result<TracebackResult> run_traceback(const TracebackConfig& config);

// The streaming variant: the same simulation (identical flows, bins and
// legal posture), but detection runs through a stream::TapRegistry —
// one legally-admitted TapSession per candidate flow, every tap fed
// from ONE simulation pass, each flow's bins pushed one at a time
// exactly as a live ISP tap would see them, with the verdict available
// the moment the code period completes.  Each tap's admission runs the
// §IV.B collection posture through the legal engine under an
// internally-constructed court order BEFORE any tap state exists.
// Bit-identical to run_traceback on every flow verdict (the online
// despreader is bit-identical to the batch kernel; the batch path stays
// the oracle), and bit-identical to the resimulate_per_suspect
// reference loop — the single-pass fan-out changes the number of
// simulation passes (see TracebackResult::sim_passes), never a bin.
[[nodiscard]] Result<TracebackResult> run_streaming_traceback(
    const TracebackConfig& config);

// --- multi-flow variant (Gold codes) ------------------------------------
//
// Situation: the seized server talks to MANY accounts at once.  Each
// account's server-side flow is marked with its own Gold code; the ISP
// observes ONE client's arrivals and despreads under every code.  The
// code that fires identifies which account the observed client is.

struct MultiflowConfig {
  TorConfig network;
  int gold_degree = 9;            // family of 2^degree + 1 codes
  std::size_t num_accounts = 8;   // concurrently marked flows
  std::size_t true_account = 3;   // which account the observed client is
  double chip_ms = 400.0;
  double depth = 0.35;
  double base_rate_pps = 120.0;
  double threshold_sigmas = 5.0;
  std::uint64_t seed = 7;
  // Worker threads for the per-account despread fan-out (the whole
  // CodeFamily scans in one watermark::ScanBatch); 0 = hardware
  // concurrency.  Bit-identical for every thread count.
  unsigned detect_threads = 0;
};

struct MultiflowResult {
  // Despread correlation per account code, for the observed client.
  std::vector<double> correlations;
  std::size_t identified_account = 0;  // argmax correlation
  bool correct = false;                // identified == true_account
  bool above_threshold = false;        // the winning despread fired
  double margin = 0.0;                 // winner corr minus runner-up corr
};

[[nodiscard]] Result<MultiflowResult> run_multiflow_traceback(
    const MultiflowConfig& config);

}  // namespace lexfor::tornet
