#include "tornet/baseline.h"

#include <algorithm>
#include <cmath>

#include "watermark/correlate.h"

namespace lexfor::tornet {
namespace {

std::vector<double> rate_series(const std::vector<double>& times_sec,
                                double window_sec, std::size_t windows) {
  const auto counts = bin_arrivals(times_sec, 0.0, window_sec, windows);
  std::vector<double> out;
  out.reserve(counts.size());
  for (const auto c : counts) out.push_back(static_cast<double>(c));
  return out;
}

}  // namespace

Result<PassiveResult> run_passive_correlation(const PassiveConfig& config) {
  if (config.window_sec <= 0.0 || config.observe_sec <= config.window_sec) {
    return InvalidArgument("passive correlation: bad window configuration");
  }
  AnonymityNetwork net(config.network);
  Rng rng(config.seed);
  const auto windows =
      static_cast<std::size_t>(config.observe_sec / config.window_sec);

  PassiveResult result;

  // The suspect's flow: the server-side send times ARE the reference
  // series; the client-side arrivals are what the ISP sees.
  auto suspect_circuit = net.build_circuit(rng);
  if (!suspect_circuit.ok()) return suspect_circuit.status();
  const auto suspect_sends = generate_modulated_poisson(
      config.base_rate_pps, config.observe_sec, 1.0, nullptr, rng);
  const auto suspect_arrivals =
      net.transit(suspect_circuit.value(), suspect_sends, rng);
  const auto server_series =
      rate_series(suspect_sends, config.window_sec, windows);

  // Scoring goes through the one repo-wide implementation (bit-identical
  // to the retained util::pearson reference; asserted in tests and
  // gated in bench_baseline).
  result.correlations.push_back(watermark::CorrelationKernel::cross_score(
      server_series, rate_series(suspect_arrivals, config.window_sec, windows)));

  // Decoys: independent flows through their own circuits.
  for (std::size_t i = 0; i < config.num_decoys; ++i) {
    auto circuit = net.build_circuit(rng);
    if (!circuit.ok()) return circuit.status();
    const auto sends = generate_modulated_poisson(
        config.base_rate_pps, config.observe_sec, 1.0, nullptr, rng);
    const auto arrivals = net.transit(circuit.value(), sends, rng);
    result.correlations.push_back(watermark::CorrelationKernel::cross_score(
        server_series, rate_series(arrivals, config.window_sec, windows)));
  }

  const auto best = std::max_element(result.correlations.begin(),
                                     result.correlations.end());
  result.identified_correctly = best == result.correlations.begin();
  double best_decoy = -2.0;
  for (std::size_t i = 1; i < result.correlations.size(); ++i) {
    best_decoy = std::max(best_decoy, result.correlations[i]);
  }
  result.margin = result.correlations.front() - best_decoy;
  return result;
}

Result<ComparisonResult> run_baseline_comparison(
    const TracebackConfig& watermark_config, int trials) {
  if (trials <= 0) return InvalidArgument("comparison: trials must be > 0");

  ComparisonResult out;
  out.trials = trials;
  const double code_len = static_cast<double>(
      (std::size_t{1} << watermark_config.pn_degree) - 1);
  out.observation_sec = code_len * watermark_config.chip_ms * 1e-3;

  int wm_ok = 0, passive_ok = 0;
  for (int t = 0; t < trials; ++t) {
    TracebackConfig wm = watermark_config;
    wm.seed = watermark_config.seed + static_cast<std::uint64_t>(t) * 131;
    auto wm_r = run_traceback(wm);
    if (!wm_r.ok()) return wm_r.status();
    wm_ok += wm_r.value().suspect_detected && wm_r.value().decoys_flagged == 0;

    PassiveConfig passive;
    passive.network = watermark_config.network;
    passive.window_sec = watermark_config.chip_ms * 1e-3;
    passive.observe_sec = out.observation_sec;
    passive.base_rate_pps = watermark_config.base_rate_pps;
    passive.num_decoys = watermark_config.num_decoys;
    passive.seed = wm.seed ^ 0x5a5a5a5a;
    auto p_r = run_passive_correlation(passive);
    if (!p_r.ok()) return p_r.status();
    passive_ok += p_r.value().identified_correctly;
  }
  out.watermark_success_rate = static_cast<double>(wm_ok) / trials;
  out.passive_success_rate = static_cast<double>(passive_ok) / trials;
  return out;
}

}  // namespace lexfor::tornet
