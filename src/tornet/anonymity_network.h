// Onion-routing anonymity network (Tor/Anonymizer-style), the substrate
// for the §IV.B traceback experiment.
//
// Content and addressing inside the network are encrypted hop-to-hop, so
// an investigator cannot read who talks to whom — but packet *timing*
// survives: each relay adds batching and jitter, yet the coarse rate
// envelope of a flow persists end-to-end.  That is precisely the channel
// the DSSS watermark uses.

#pragma once

#include <functional>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"
#include "util/status.h"

namespace lexfor::tornet {

struct TorConfig {
  std::size_t num_relays = 9;
  int circuit_length = 3;       // entry, middle(s), exit
  // Per-relay forwarding jitter (exponential mean, ms).
  double relay_jitter_ms = 30.0;
  // Per-relay batching quantum (uniform [0, batch) ms): relays flush
  // queued cells periodically.
  double relay_batch_ms = 10.0;
  // Base propagation per hop (ms).
  double hop_latency_ms = 25.0;
};

struct Circuit {
  CircuitId id;
  std::vector<std::size_t> relays;  // indices into the relay set
};

class AnonymityNetwork {
 public:
  explicit AnonymityNetwork(TorConfig config) : config_(config) {}

  [[nodiscard]] const TorConfig& config() const noexcept { return config_; }

  // Builds a circuit of `circuit_length` distinct relays.
  [[nodiscard]] Result<Circuit> build_circuit(Rng& rng) const;

  // Carries a flow through the circuit: given packet send times (sec,
  // ascending), returns arrival times at the far end (sec, sorted).
  // Each packet independently accrues per-relay latency + jitter +
  // batching delay; reordering is resolved by sorting, since detection
  // operates on the counting process, not packet identity.
  [[nodiscard]] std::vector<double> transit(const Circuit& circuit,
                                            const std::vector<double>& send_sec,
                                            Rng& rng) const;

 private:
  TorConfig config_;
};

// Generates send times (sec) of a Poisson process on [0, t_end) whose
// instantaneous rate is base_rate * multiplier(t) — via Lewis-Shedler
// thinning.  `multiplier` may be nullptr for a homogeneous process, and
// must return values in (0, max_multiplier].
std::vector<double> generate_modulated_poisson(
    double base_rate, double t_end_sec, double max_multiplier,
    const std::function<double(double)>& multiplier, Rng& rng);

// Bins arrival times (sec) into windows of `window_sec` aligned at
// `start_sec`, producing `num_windows` counts — the rate series an ISP
// tap observes without touching content.
std::vector<std::uint32_t> bin_arrivals(const std::vector<double>& arrivals_sec,
                                        double start_sec, double window_sec,
                                        std::size_t num_windows);

}  // namespace lexfor::tornet
