#include "tornet/traceback.h"

#include <algorithm>
#include <functional>

#include "stream/online_despread.h"
#include "stream/tap_registry.h"
#include "watermark/correlate.h"
#include "watermark/gold_code.h"
#include "watermark/scan_batch.h"

namespace lexfor::tornet {

legal::Scenario collection_scenario() {
  // Collecting per-flow packet counts at the ISP touches only
  // addressing/size information in real time: Pen/Trap territory, a
  // court order suffices (paper §IV.B: "they do not need to collect the
  // entire packet, so they do not need a wiretap warrant").
  return legal::Scenario{}
      .named("non-content rate collection at the suspect's ISP")
      .by(legal::ActorKind::kLawEnforcement)
      .acquiring(legal::DataKind::kAddressing)
      .located(legal::DataState::kInTransit)
      .when(legal::Timing::kRealTime);
}

namespace {

// Phase 1 of the experiment: simulate suspect + decoy flows through the
// anonymity network and bin the ISP-side arrivals into one flat rate
// buffer (one n_chips slice per flow, suspect first).  Shared between
// the batch and streaming tracebacks so both detect over IDENTICAL
// bins.  Flow i draws exclusively from Rng::sub_stream(config.seed, i):
// a counter-derived stream, so each flow's randomness is independent of
// every other flow's existence and the loop can later fan out across
// threads without changing a single bin.
// Simulates flows [flow_begin, flow_end) and writes each flow's n_chips
// bins at rates[(flow - flow_begin) * n_chips].  Because flow i draws
// from Rng::sub_stream(config.seed, i), a flow's bins are the same
// whether its pass simulates one flow or all of them — that equality is
// what lets the per-suspect reference loop and the single-pass registry
// produce bit-identical series.
Status simulate_flow_range(const TracebackConfig& config,
                           const watermark::PnCode& code,
                           std::size_t flow_begin, std::size_t flow_end,
                           std::vector<double>& rates) {
  const std::size_t n_chips = code.length();
  const double chip_sec = config.chip_ms * 1e-3;
  // Generate past the code window so late (jittered) packets still land
  // in their chip bins.
  const double t_end = chip_sec * static_cast<double>(n_chips) + 2.0;

  watermark::EmbedParams embed_params;
  embed_params.start = SimTime::zero();
  embed_params.chip_duration = SimDuration::from_ms(config.chip_ms);
  embed_params.depth = config.depth;
  const watermark::Embedder embedder(code, embed_params);

  AnonymityNetwork net(config.network);

  rates.resize((flow_end - flow_begin) * n_chips);
  const double hops = static_cast<double>(config.network.circuit_length);
  // The mean circuit delay shifts every packet; align the observation
  // window at the expected shift (the investigator calibrates this by
  // measuring circuit RTT, which is observable without content).
  const double expected_shift_sec =
      hops *
      (config.network.hop_latency_ms + config.network.relay_jitter_ms +
       config.network.relay_batch_ms / 2.0) *
      1e-3;

  for (std::size_t flow = flow_begin; flow < flow_end; ++flow) {
    const bool marked = flow == 0;  // the suspect's flow carries the mark
    Rng flow_rng = Rng::sub_stream(config.seed, flow);
    auto circuit_r = net.build_circuit(flow_rng);
    if (!circuit_r.ok()) return circuit_r.status();

    std::function<double(double)> mult;
    if (marked) {
      mult = [&embedder](double t_sec) {
        return embedder.multiplier(SimTime::from_sec(t_sec));
      };
    }
    const auto sends = generate_modulated_poisson(
        config.base_rate_pps, t_end, 1.0 + config.depth, mult, flow_rng);
    const auto arrivals = net.transit(circuit_r.value(), sends, flow_rng);
    const auto bins =
        bin_arrivals(arrivals, expected_shift_sec, chip_sec, n_chips);
    double* out = rates.data() + (flow - flow_begin) * n_chips;
    for (std::size_t i = 0; i < n_chips; ++i) {
      out[i] = static_cast<double>(bins[i]);
    }
  }
  return Status::Ok();
}

// Phase 1 as the batch traceback uses it: every flow, one pass.
Status simulate_flow_rates(const TracebackConfig& config,
                           const watermark::PnCode& code,
                           std::vector<double>& rates) {
  return simulate_flow_range(config, code, 0, 1 + config.num_decoys, rates);
}

// The court order the streaming taps are admitted under: pen/trap-style
// authority over addressing data, issued when collection starts, valid
// well past the observation window.  Matches the §IV.B posture the
// collection_scenario() evaluation determines is required.
legal::GrantedAuthority streaming_tap_authority() {
  legal::LegalProcess order;
  order.kind = legal::ProcessKind::kCourtOrder;
  order.scope.data_kinds = {legal::DataKind::kAddressing};
  order.issued_at = SimTime::zero();
  order.validity = SimDuration::from_sec(30.0 * 24.0 * 3600.0);
  return legal::GrantedAuthority{order};
}

// Folds one flow's detection into the shared result summary.
void accumulate_flow_verdict(TracebackResult& result, std::size_t flow,
                             const watermark::DetectionResult& detection) {
  FlowVerdict v;
  v.is_suspect = flow == 0;
  v.detection = detection;
  result.flows.push_back(v);
  if (v.is_suspect) {
    result.suspect_detected = v.detection.detected;
    result.suspect_correlation = v.detection.correlation;
  } else {
    if (v.detection.detected) ++result.decoys_flagged;
    result.max_decoy_correlation =
        std::max(result.max_decoy_correlation, v.detection.correlation);
  }
}

}  // namespace

Result<TracebackResult> run_traceback(const TracebackConfig& config) {
  auto code_r = watermark::PnCode::m_sequence(config.pn_degree);
  if (!code_r.ok()) return code_r.status();
  const watermark::PnCode code = std::move(code_r).value();
  const std::size_t n_chips = code.length();

  TracebackResult result;
  result.collection_legality =
      legal::ComplianceEngine{}.evaluate(collection_scenario());

  const std::size_t num_flows = 1 + config.num_decoys;
  std::vector<double> rates;
  const Status sim = simulate_flow_rates(config, code, rates);
  if (!sim.ok()) return sim;
  result.sim_passes = 1;
  result.flows_simulated = num_flows;

  // Phase 2 — detection, fanned out: one kernel (one code), one scan
  // job per flow, merged back in input order.  max_offset 0 keeps the
  // aligned-detection semantics (the investigator controls the embed
  // start) and a Bonferroni factor of k=1, i.e. the plain threshold.
  const watermark::CorrelationKernel kernel(code, config.threshold_sigmas);
  std::vector<watermark::ScanJob> jobs(num_flows);
  for (std::size_t flow = 0; flow < num_flows; ++flow) {
    jobs[flow].kernel = &kernel;
    jobs[flow].rates =
        std::span<const double>(rates.data() + flow * n_chips, n_chips);
  }
  const watermark::ScanBatch batch(
      watermark::ScanBatchOptions{config.detect_threads});
  const auto detections = batch.run(jobs);

  for (std::size_t flow = 0; flow < num_flows; ++flow) {
    const auto& det_r = detections[flow];
    if (!det_r.ok()) return det_r.status();
    accumulate_flow_verdict(result, flow, det_r.value().best);
  }
  return result;
}

Result<TracebackResult> run_streaming_traceback(const TracebackConfig& config) {
  auto code_r = watermark::PnCode::m_sequence(config.pn_degree);
  if (!code_r.ok()) return code_r.status();
  const watermark::PnCode code = std::move(code_r).value();
  const std::size_t n_chips = code.length();

  TracebackResult result;
  result.collection_legality =
      legal::ComplianceEngine{}.evaluate(collection_scenario());

  const std::size_t num_flows = 1 + config.num_decoys;
  const watermark::CorrelationKernel kernel(code, config.threshold_sigmas);

  if (config.resimulate_per_suspect) {
    // Reference loop: one simulation pass per candidate, exactly what a
    // per-suspect investigation would run.  sub_stream re-seeding makes
    // each pass's bins identical to the single-pass run's slice for
    // that flow, so the registry path below must (and does) match this
    // bit for bit — the property the tests and A-STREAM gate pin.
    std::vector<double> flow_rates;
    for (std::size_t flow = 0; flow < num_flows; ++flow) {
      const Status sim =
          simulate_flow_range(config, code, flow, flow + 1, flow_rates);
      if (!sim.ok()) return sim;
      ++result.sim_passes;
      ++result.flows_simulated;

      stream::OnlineDespreader despreader(kernel, /*max_offset=*/0);
      for (std::size_t i = 0; i < n_chips; ++i) {
        (void)despreader.push(flow_rates[i]);
      }
      accumulate_flow_verdict(result, flow, despreader.verdict().scan.best);
    }
    return result;
  }

  // Single pass: simulate every flow once...
  std::vector<double> rates;
  const Status sim = simulate_flow_rates(config, code, rates);
  if (!sim.ok()) return sim;
  result.sim_passes = 1;
  result.flows_simulated = num_flows;

  // ...then tap every candidate through one TapRegistry.  Each tap is
  // admitted per suspect — the §IV.B collection posture, evaluated
  // through the shared verdict cache under a court order — before any
  // ring or window exists; one arena backs all of them.  max_offset 0
  // mirrors run_traceback's aligned scan, so every verdict is
  // bit-identical to the batch path (tested + gated by A-STREAM).
  stream::TapRegistry registry;
  for (std::size_t flow = 0; flow < num_flows; ++flow) {
    stream::TapSessionConfig tap_cfg;
    tap_cfg.scenario = collection_scenario();
    tap_cfg.authority = streaming_tap_authority();
    tap_cfg.target = NodeId{static_cast<std::uint32_t>(flow + 1)};
    tap_cfg.ring.start = SimTime::zero();
    tap_cfg.ring.bin_width = SimDuration::from_ms(config.chip_ms);
    tap_cfg.ring.capacity = n_chips;
    tap_cfg.max_offset = 0;
    const auto tap = registry.add_tap(kernel, tap_cfg);
    if (!tap.ok()) return tap.status();
  }

  // Fan the pass's bins out: bin-major feed order (every tap sees bin i
  // before any tap sees bin i+1), the order one shared collection clock
  // would deliver them.  Per-flow verdicts cannot depend on the
  // interleaving — each despreader only reads its own window.
  for (std::size_t i = 0; i < n_chips; ++i) {
    for (std::size_t flow = 0; flow < num_flows; ++flow) {
      registry.feed_bin(flow, rates[flow * n_chips + i]);
    }
  }

  for (std::size_t flow = 0; flow < num_flows; ++flow) {
    accumulate_flow_verdict(result, flow,
                            registry.tap(flow).verdict().scan.best);
  }
  return result;
}

}  // namespace lexfor::tornet

namespace lexfor::tornet {

Result<MultiflowResult> run_multiflow_traceback(const MultiflowConfig& config) {
  if (config.true_account >= config.num_accounts) {
    return InvalidArgument(
        "run_multiflow_traceback: true_account out of range");
  }
  auto family_r = watermark::GoldCodeFamily::create(config.gold_degree);
  if (!family_r.ok()) return family_r.status();
  const watermark::GoldCodeFamily family = std::move(family_r).value();
  if (config.num_accounts > family.size()) {
    return InvalidArgument(
        "run_multiflow_traceback: more accounts than Gold codes in the "
        "family");
  }

  const std::size_t n_chips = family.code_length();
  const double chip_sec = config.chip_ms * 1e-3;
  const double t_end = chip_sec * static_cast<double>(n_chips) + 2.0;

  AnonymityNetwork net(config.network);
  Rng rng(config.seed);

  // The observed client carries the flow marked with the TRUE account's
  // code.  (The other accounts' flows go to other clients; since flows
  // are independent Poisson processes, simulating them would not change
  // what this client's tap sees.)
  watermark::EmbedParams embed_params;
  embed_params.start = SimTime::zero();
  embed_params.chip_duration = SimDuration::from_ms(config.chip_ms);
  embed_params.depth = config.depth;
  const watermark::Embedder embedder(family.code(config.true_account),
                                     embed_params);

  auto circuit_r = net.build_circuit(rng);
  if (!circuit_r.ok()) return circuit_r.status();

  const auto sends = generate_modulated_poisson(
      config.base_rate_pps, t_end, 1.0 + config.depth,
      [&embedder](double t_sec) {
        return embedder.multiplier(SimTime::from_sec(t_sec));
      },
      rng);
  const auto arrivals = net.transit(circuit_r.value(), sends, rng);

  const double hops = static_cast<double>(config.network.circuit_length);
  const double expected_shift_sec =
      hops *
      (config.network.hop_latency_ms + config.network.relay_jitter_ms +
       config.network.relay_batch_ms / 2.0) *
      1e-3;
  const auto bins =
      bin_arrivals(arrivals, expected_shift_sec, chip_sec, n_chips);
  std::vector<double> rates(bins.begin(), bins.end());

  // One tap, every account's code: a kernel per Gold code, all scanning
  // the SAME rate series in one batch.  Account order is preserved by
  // the batch's in-order merge, so the argmax below is deterministic.
  std::vector<watermark::CorrelationKernel> kernels;
  kernels.reserve(config.num_accounts);
  for (std::size_t a = 0; a < config.num_accounts; ++a) {
    kernels.emplace_back(family.code(a), config.threshold_sigmas);
  }
  std::vector<watermark::ScanJob> jobs(config.num_accounts);
  for (std::size_t a = 0; a < config.num_accounts; ++a) {
    jobs[a].kernel = &kernels[a];
    jobs[a].rates = std::span<const double>(rates);
  }
  const watermark::ScanBatch batch(
      watermark::ScanBatchOptions{config.detect_threads});
  const auto detections = batch.run(jobs);

  MultiflowResult result;
  result.correlations.reserve(config.num_accounts);
  double best = -2.0, runner_up = -2.0;
  bool winner_fired = false;
  for (std::size_t a = 0; a < config.num_accounts; ++a) {
    const auto& det_r = detections[a];
    if (!det_r.ok()) return det_r.status();
    const double corr = det_r.value().best.correlation;
    result.correlations.push_back(corr);
    if (corr > best) {
      runner_up = best;
      best = corr;
      result.identified_account = a;
      winner_fired = det_r.value().best.detected;
    } else if (corr > runner_up) {
      runner_up = corr;
    }
  }
  result.correct = result.identified_account == config.true_account;
  result.above_threshold = winner_fired;
  result.margin = runner_up > -2.0 ? best - runner_up : best;
  return result;
}

}  // namespace lexfor::tornet
