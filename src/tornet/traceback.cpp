#include "tornet/traceback.h"

#include <algorithm>
#include <functional>

#include "stream/online_despread.h"
#include "watermark/correlate.h"
#include "watermark/gold_code.h"
#include "watermark/scan_batch.h"

namespace lexfor::tornet {

legal::Scenario collection_scenario() {
  // Collecting per-flow packet counts at the ISP touches only
  // addressing/size information in real time: Pen/Trap territory, a
  // court order suffices (paper §IV.B: "they do not need to collect the
  // entire packet, so they do not need a wiretap warrant").
  return legal::Scenario{}
      .named("non-content rate collection at the suspect's ISP")
      .by(legal::ActorKind::kLawEnforcement)
      .acquiring(legal::DataKind::kAddressing)
      .located(legal::DataState::kInTransit)
      .when(legal::Timing::kRealTime);
}

namespace {

// Phase 1 of the experiment: simulate suspect + decoy flows through the
// anonymity network and bin the ISP-side arrivals into one flat rate
// buffer (one n_chips slice per flow, suspect first).  Shared between
// the batch and streaming tracebacks so both detect over IDENTICAL
// bins.  Flow i draws exclusively from Rng::sub_stream(config.seed, i):
// a counter-derived stream, so each flow's randomness is independent of
// every other flow's existence and the loop can later fan out across
// threads without changing a single bin.
Status simulate_flow_rates(const TracebackConfig& config,
                           const watermark::PnCode& code,
                           std::vector<double>& rates) {
  const std::size_t n_chips = code.length();
  const double chip_sec = config.chip_ms * 1e-3;
  // Generate past the code window so late (jittered) packets still land
  // in their chip bins.
  const double t_end = chip_sec * static_cast<double>(n_chips) + 2.0;

  watermark::EmbedParams embed_params;
  embed_params.start = SimTime::zero();
  embed_params.chip_duration = SimDuration::from_ms(config.chip_ms);
  embed_params.depth = config.depth;
  const watermark::Embedder embedder(code, embed_params);

  AnonymityNetwork net(config.network);

  const std::size_t num_flows = 1 + config.num_decoys;
  rates.resize(num_flows * n_chips);
  const double hops = static_cast<double>(config.network.circuit_length);
  // The mean circuit delay shifts every packet; align the observation
  // window at the expected shift (the investigator calibrates this by
  // measuring circuit RTT, which is observable without content).
  const double expected_shift_sec =
      hops *
      (config.network.hop_latency_ms + config.network.relay_jitter_ms +
       config.network.relay_batch_ms / 2.0) *
      1e-3;

  for (std::size_t flow = 0; flow < num_flows; ++flow) {
    const bool marked = flow == 0;  // the suspect's flow carries the mark
    Rng flow_rng = Rng::sub_stream(config.seed, flow);
    auto circuit_r = net.build_circuit(flow_rng);
    if (!circuit_r.ok()) return circuit_r.status();

    std::function<double(double)> mult;
    if (marked) {
      mult = [&embedder](double t_sec) {
        return embedder.multiplier(SimTime::from_sec(t_sec));
      };
    }
    const auto sends = generate_modulated_poisson(
        config.base_rate_pps, t_end, 1.0 + config.depth, mult, flow_rng);
    const auto arrivals = net.transit(circuit_r.value(), sends, flow_rng);
    const auto bins =
        bin_arrivals(arrivals, expected_shift_sec, chip_sec, n_chips);
    double* out = rates.data() + flow * n_chips;
    for (std::size_t i = 0; i < n_chips; ++i) {
      out[i] = static_cast<double>(bins[i]);
    }
  }
  return Status::Ok();
}

}  // namespace

Result<TracebackResult> run_traceback(const TracebackConfig& config) {
  auto code_r = watermark::PnCode::m_sequence(config.pn_degree);
  if (!code_r.ok()) return code_r.status();
  const watermark::PnCode code = std::move(code_r).value();
  const std::size_t n_chips = code.length();

  TracebackResult result;
  result.collection_legality =
      legal::ComplianceEngine{}.evaluate(collection_scenario());

  const std::size_t num_flows = 1 + config.num_decoys;
  std::vector<double> rates;
  const Status sim = simulate_flow_rates(config, code, rates);
  if (!sim.ok()) return sim;

  // Phase 2 — detection, fanned out: one kernel (one code), one scan
  // job per flow, merged back in input order.  max_offset 0 keeps the
  // aligned-detection semantics (the investigator controls the embed
  // start) and a Bonferroni factor of k=1, i.e. the plain threshold.
  const watermark::CorrelationKernel kernel(code, config.threshold_sigmas);
  std::vector<watermark::ScanJob> jobs(num_flows);
  for (std::size_t flow = 0; flow < num_flows; ++flow) {
    jobs[flow].kernel = &kernel;
    jobs[flow].rates =
        std::span<const double>(rates.data() + flow * n_chips, n_chips);
  }
  const watermark::ScanBatch batch(
      watermark::ScanBatchOptions{config.detect_threads});
  const auto detections = batch.run(jobs);

  for (std::size_t flow = 0; flow < num_flows; ++flow) {
    const auto& det_r = detections[flow];
    if (!det_r.ok()) return det_r.status();
    FlowVerdict v;
    v.is_suspect = flow == 0;
    v.detection = det_r.value().best;
    result.flows.push_back(v);
    if (v.is_suspect) {
      result.suspect_detected = v.detection.detected;
      result.suspect_correlation = v.detection.correlation;
    } else {
      if (v.detection.detected) ++result.decoys_flagged;
      result.max_decoy_correlation =
          std::max(result.max_decoy_correlation, v.detection.correlation);
    }
  }
  return result;
}

Result<TracebackResult> run_streaming_traceback(const TracebackConfig& config) {
  auto code_r = watermark::PnCode::m_sequence(config.pn_degree);
  if (!code_r.ok()) return code_r.status();
  const watermark::PnCode code = std::move(code_r).value();
  const std::size_t n_chips = code.length();

  TracebackResult result;
  result.collection_legality =
      legal::ComplianceEngine{}.evaluate(collection_scenario());

  const std::size_t num_flows = 1 + config.num_decoys;
  std::vector<double> rates;
  const Status sim = simulate_flow_rates(config, code, rates);
  if (!sim.ok()) return sim;

  // Phase 2 — streaming detection: one online despreader per flow, fed
  // bin by bin exactly as a live tap would see them.  max_offset 0
  // mirrors run_traceback's aligned scan, so every verdict is
  // bit-identical to the batch path (tested + gated by A-STREAM).
  const watermark::CorrelationKernel kernel(code, config.threshold_sigmas);
  for (std::size_t flow = 0; flow < num_flows; ++flow) {
    stream::OnlineDespreader despreader(kernel, /*max_offset=*/0);
    const double* bins = rates.data() + flow * n_chips;
    for (std::size_t i = 0; i < n_chips; ++i) (void)despreader.push(bins[i]);

    FlowVerdict v;
    v.is_suspect = flow == 0;
    v.detection = despreader.verdict().scan.best;
    result.flows.push_back(v);
    if (v.is_suspect) {
      result.suspect_detected = v.detection.detected;
      result.suspect_correlation = v.detection.correlation;
    } else {
      if (v.detection.detected) ++result.decoys_flagged;
      result.max_decoy_correlation =
          std::max(result.max_decoy_correlation, v.detection.correlation);
    }
  }
  return result;
}

}  // namespace lexfor::tornet

namespace lexfor::tornet {

Result<MultiflowResult> run_multiflow_traceback(const MultiflowConfig& config) {
  if (config.true_account >= config.num_accounts) {
    return InvalidArgument(
        "run_multiflow_traceback: true_account out of range");
  }
  auto family_r = watermark::GoldCodeFamily::create(config.gold_degree);
  if (!family_r.ok()) return family_r.status();
  const watermark::GoldCodeFamily family = std::move(family_r).value();
  if (config.num_accounts > family.size()) {
    return InvalidArgument(
        "run_multiflow_traceback: more accounts than Gold codes in the "
        "family");
  }

  const std::size_t n_chips = family.code_length();
  const double chip_sec = config.chip_ms * 1e-3;
  const double t_end = chip_sec * static_cast<double>(n_chips) + 2.0;

  AnonymityNetwork net(config.network);
  Rng rng(config.seed);

  // The observed client carries the flow marked with the TRUE account's
  // code.  (The other accounts' flows go to other clients; since flows
  // are independent Poisson processes, simulating them would not change
  // what this client's tap sees.)
  watermark::EmbedParams embed_params;
  embed_params.start = SimTime::zero();
  embed_params.chip_duration = SimDuration::from_ms(config.chip_ms);
  embed_params.depth = config.depth;
  const watermark::Embedder embedder(family.code(config.true_account),
                                     embed_params);

  auto circuit_r = net.build_circuit(rng);
  if (!circuit_r.ok()) return circuit_r.status();

  const auto sends = generate_modulated_poisson(
      config.base_rate_pps, t_end, 1.0 + config.depth,
      [&embedder](double t_sec) {
        return embedder.multiplier(SimTime::from_sec(t_sec));
      },
      rng);
  const auto arrivals = net.transit(circuit_r.value(), sends, rng);

  const double hops = static_cast<double>(config.network.circuit_length);
  const double expected_shift_sec =
      hops *
      (config.network.hop_latency_ms + config.network.relay_jitter_ms +
       config.network.relay_batch_ms / 2.0) *
      1e-3;
  const auto bins =
      bin_arrivals(arrivals, expected_shift_sec, chip_sec, n_chips);
  std::vector<double> rates(bins.begin(), bins.end());

  // One tap, every account's code: a kernel per Gold code, all scanning
  // the SAME rate series in one batch.  Account order is preserved by
  // the batch's in-order merge, so the argmax below is deterministic.
  std::vector<watermark::CorrelationKernel> kernels;
  kernels.reserve(config.num_accounts);
  for (std::size_t a = 0; a < config.num_accounts; ++a) {
    kernels.emplace_back(family.code(a), config.threshold_sigmas);
  }
  std::vector<watermark::ScanJob> jobs(config.num_accounts);
  for (std::size_t a = 0; a < config.num_accounts; ++a) {
    jobs[a].kernel = &kernels[a];
    jobs[a].rates = std::span<const double>(rates);
  }
  const watermark::ScanBatch batch(
      watermark::ScanBatchOptions{config.detect_threads});
  const auto detections = batch.run(jobs);

  MultiflowResult result;
  result.correlations.reserve(config.num_accounts);
  double best = -2.0, runner_up = -2.0;
  bool winner_fired = false;
  for (std::size_t a = 0; a < config.num_accounts; ++a) {
    const auto& det_r = detections[a];
    if (!det_r.ok()) return det_r.status();
    const double corr = det_r.value().best.correlation;
    result.correlations.push_back(corr);
    if (corr > best) {
      runner_up = best;
      best = corr;
      result.identified_account = a;
      winner_fired = det_r.value().best.detected;
    } else if (corr > runner_up) {
      runner_up = corr;
    }
  }
  result.correct = result.identified_account == config.true_account;
  result.above_threshold = winner_fired;
  result.margin = runner_up > -2.0 ? best - runner_up : best;
  return result;
}

}  // namespace lexfor::tornet
