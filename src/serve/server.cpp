#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "obs/obs.h"

namespace lexfor::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint32_t clamp_ns(Clock::duration d) noexcept {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  if (ns <= 0) return 0;
  constexpr std::int64_t kMax = 0xFFFFFFFF;
  return static_cast<std::uint32_t>(ns < kMax ? ns : kMax);
}

}  // namespace

Connection::Connection(std::size_t queue_capacity) {
  slots_.reserve(queue_capacity);
  // Pre-size the response buffer for a full batch so the first serve
  // of a warmed connection is already allocation-flat.
  responses_.reserve(queue_capacity * wire::kResponseFrameBytes);
}

VerdictServer::VerdictServer(ServerOptions options)
    : options_(options),
      batch_(options.batch),
      table_(options.verdict_table_capacity == 0
                 ? 1
                 : options.verdict_table_capacity,
             options.verdict_table_shards),
      pool_(options.workers, [] { LEXFOR_OBS_WARM_THREAD(); }) {
  if (options_.grain == 0) options_.grain = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

Connection VerdictServer::connect() const {
  return Connection(options_.queue_capacity);
}

void VerdictServer::evaluate_range(Connection& conn, Pending* pending,
                                   std::size_t begin, std::size_t end) const {
  for (std::size_t i = begin; i < end; ++i) {
    const auto t0 = Clock::now();
    const wire::Request& req = conn.slots_[i];
    const legal::ScenarioFingerprint fp = legal::fingerprint(req.scenario);
    Pending& p = pending[i];
    if (const auto hit = table_.get(fp)) {
      p.verdict = *hit;
      p.cache_hit = 1;
    } else {
      // Miss: derive through the BatchEvaluator so the full
      // Determination lands in the shared verdict cache too.
      const legal::Determination d = batch_.evaluate(req.scenario);
      p.verdict.needs_process = d.needs_process ? 1 : 0;
      p.verdict.required_process =
          static_cast<std::uint8_t>(d.required_process);
      p.verdict.required_proof = static_cast<std::uint8_t>(d.required_proof);
      p.cache_hit = 0;
      table_.put(fp, p.verdict);
    }
    p.server_ns = clamp_ns(Clock::now() - t0);
    LEXFOR_OBS_HISTOGRAM_RECORD("serve.request_latency_ns", p.server_ns);
  }
}

ServeStats VerdictServer::serve(Connection& conn,
                                std::span<const std::uint8_t> frames) {
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "serve", "serve_batch",
                  std::to_string(frames.size()) + " bytes",
                  obs::no_sim_time());
  ServeStats stats;
  stats.batches = 1;
  conn.arena_.reset();
  conn.responses_.clear();

  // --- Admission: walk the frame stream, classify every frame. ------
  // slots_ is recycled: resize() down keeps string capacity in the
  // surviving elements, and growth only happens until the connection
  // has seen a full batch once.
  std::size_t accepted = 0;
  bool overload_reported = false;
  std::span<const std::uint8_t> rest = frames;
  while (!rest.empty()) {
    const auto info = wire::peek_frame(rest);
    if (!info.ok()) {
      // Framing lost: the rest of the buffer cannot be navigated.
      // One malformed frame is charged for the unparseable tail.
      ++stats.offered;
      ++stats.rejected_malformed;
      break;
    }
    const std::span<const std::uint8_t> frame =
        rest.subspan(0, info.value().frame_len);
    rest = rest.subspan(info.value().frame_len);
    ++stats.offered;

    if (accepted >= options_.queue_capacity) {
      // Shed path: still classify (validation is allocation-free) so
      // garbage offered during overload is not counted as load.
      const Status v = wire::validate_request(frame);
      if (v.ok()) {
        ++stats.shed_queue_full;
        if (!overload_reported) {
          overload_reported = true;
          LEXFOR_OBS_EVENT(obs::Level::kError, "serve", "overload",
                           "queue full, shedding", obs::no_sim_time());
        }
      } else if (v.code() == StatusCode::kFailedPrecondition) {
        ++stats.rejected_version;
      } else {
        ++stats.rejected_malformed;
      }
      continue;
    }

    if (accepted == conn.slots_.size()) conn.slots_.emplace_back();
    const Status s = wire::decode_request(frame, conn.slots_[accepted]);
    if (s.ok()) {
      ++accepted;
      ++stats.accepted;
    } else if (s.code() == StatusCode::kFailedPrecondition) {
      ++stats.rejected_version;
    } else {
      ++stats.rejected_malformed;
    }
  }

  // --- Evaluation fan-out. ------------------------------------------
  Pending* pending = conn.arena_.alloc_array<Pending>(accepted);
  for (std::size_t i = 0; i < accepted; ++i) pending[i] = Pending{};

  const std::size_t grain = options_.grain;
  const std::size_t chunks = accepted == 0 ? 0 : (accepted + grain - 1) / grain;
  if (chunks <= 1 || pool_.size() <= 1) {
    // Inline path: no dispatch closures, strictly zero heap traffic in
    // steady state (the A-SERVE arena-flat gate runs here).
    evaluate_range(conn, pending, 0, accepted);
  } else {
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t remaining = chunks;
    for (std::size_t begin = 0; begin < accepted; begin += grain) {
      const std::size_t end = std::min(begin + grain, accepted);
      std::function<void()> task = [&, begin, end] {
        evaluate_range(conn, pending, begin, end);
        const std::scoped_lock lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      };
      if (!pool_.try_submit(task, options_.pool_queue_depth).ok()) {
        // Caller-runs degradation: the pool refused to buffer, so the
        // serving thread absorbs the chunk.  Accepted work is never
        // dropped.
        ++stats.pool_saturated;
        evaluate_range(conn, pending, begin, end);
        const std::scoped_lock lock(done_mu);
        --remaining;
      }
      LEXFOR_OBS_GAUGE_SET("serve.queue_depth",
                           static_cast<std::int64_t>(pool_.queue_depth()));
    }
    std::unique_lock lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

  // --- Responses, in request order. ---------------------------------
  wire::Response resp;
  for (std::size_t i = 0; i < accepted; ++i) {
    const Pending& p = pending[i];
    resp.request_id = conn.slots_[i].request_id;
    resp.status = StatusCode::kOk;
    resp.needs_process = p.verdict.needs_process != 0;
    resp.cache_hit = p.cache_hit != 0;
    resp.required_process =
        static_cast<legal::ProcessKind>(p.verdict.required_process);
    resp.required_proof =
        static_cast<legal::StandardOfProof>(p.verdict.required_proof);
    resp.server_ns = p.server_ns;
    wire::encode_response(resp, conn.responses_);
    if (p.cache_hit != 0) {
      ++stats.cache_hits;
    } else {
      ++stats.cache_misses;
    }
  }
  stats.responses = accepted;
  ++conn.batches_served_;

  // --- Accounting + obs. --------------------------------------------
  if (!stats.balanced()) {
    // This cannot happen by construction; if it ever does, the serving
    // layer's audit story is broken and the flight recorder should
    // capture the window.
    LEXFOR_OBS_EVENT(obs::Level::kError, "serve", "accounting_broken",
                     "admission counters do not balance",
                     obs::no_sim_time());
  }
  LEXFOR_OBS_COUNTER_ADD("serve.requests", stats.offered);
  LEXFOR_OBS_COUNTER_ADD("serve.responses", stats.responses);
  if (stats.shed_queue_full != 0) {
    LEXFOR_OBS_COUNTER_ADD("serve.sheds", stats.shed_queue_full);
  }
  if (stats.rejected_malformed != 0) {
    LEXFOR_OBS_COUNTER_ADD("serve.rejected_malformed",
                           stats.rejected_malformed);
  }
  if (stats.rejected_version != 0) {
    LEXFOR_OBS_COUNTER_ADD("serve.rejected_version", stats.rejected_version);
  }
  if (stats.cache_hits != 0) {
    LEXFOR_OBS_COUNTER_ADD("serve.cache_hits", stats.cache_hits);
  }
  if (stats.cache_misses != 0) {
    LEXFOR_OBS_COUNTER_ADD("serve.cache_misses", stats.cache_misses);
  }
  if (stats.pool_saturated != 0) {
    LEXFOR_OBS_COUNTER_ADD("serve.pool_saturated", stats.pool_saturated);
  }

  tot_offered_.fetch_add(stats.offered, std::memory_order_relaxed);
  tot_accepted_.fetch_add(stats.accepted, std::memory_order_relaxed);
  tot_shed_.fetch_add(stats.shed_queue_full, std::memory_order_relaxed);
  tot_malformed_.fetch_add(stats.rejected_malformed,
                           std::memory_order_relaxed);
  tot_version_.fetch_add(stats.rejected_version, std::memory_order_relaxed);
  tot_responses_.fetch_add(stats.responses, std::memory_order_relaxed);
  tot_hits_.fetch_add(stats.cache_hits, std::memory_order_relaxed);
  tot_misses_.fetch_add(stats.cache_misses, std::memory_order_relaxed);
  tot_pool_saturated_.fetch_add(stats.pool_saturated,
                                std::memory_order_relaxed);
  tot_batches_.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

ServeStats VerdictServer::stats() const {
  ServeStats s;
  s.offered = tot_offered_.load(std::memory_order_relaxed);
  s.accepted = tot_accepted_.load(std::memory_order_relaxed);
  s.shed_queue_full = tot_shed_.load(std::memory_order_relaxed);
  s.rejected_malformed = tot_malformed_.load(std::memory_order_relaxed);
  s.rejected_version = tot_version_.load(std::memory_order_relaxed);
  s.responses = tot_responses_.load(std::memory_order_relaxed);
  s.cache_hits = tot_hits_.load(std::memory_order_relaxed);
  s.cache_misses = tot_misses_.load(std::memory_order_relaxed);
  s.pool_saturated = tot_pool_saturated_.load(std::memory_order_relaxed);
  s.batches = tot_batches_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lexfor::serve
