// serve::VerdictServer — compliance-as-a-service in front of the legal
// engine.
//
// The paper's claim is that a legality check must sit in front of every
// acquisition; at ISP/provider scale that check is a service queried at
// traffic rates, not a library call.  VerdictServer is that service
// shape: request frames (serve::wire) arrive on a Connection, pass a
// BOUNDED admission stage, fan out across a util::ThreadPool, route
// through legal::BatchEvaluator's shared verdict cache, and leave as
// response frames in request order.
//
// Admission taxonomy (modeled on stream::RateRing's exhaustive drop
// classification): every offered frame lands in exactly one of
//
//   accepted           decoded and queued; ALWAYS answered
//   shed_queue_full    well-formed but past the batch's queue bound
//   rejected_malformed fails strict wire validation
//   rejected_version   header parses but the version byte is unknown
//
// and accepted + shed_queue_full + rejected_malformed +
// rejected_version == offered holds exactly, under any overload — the
// same audit posture the tap ring takes: a server that silently drops
// verdict queries is a compliance hole, not a performance bug.
// Classification happens even for shed frames via the decoder's
// allocation-free validate path, so garbage offered during overload is
// still counted as garbage, not as load.
//
// Zero-alloc steady state: each Connection owns a util::Arena (epoch
// reset per batch) carrying the pending-verdict scratch, a recycled
// slot vector whose decoded Requests keep their string capacity, and a
// response buffer that keeps its bytes.  Once the fleet's scenario mix
// is warm in the compact verdict table, a batch performs no heap
// traffic at all on the single-worker inline path, and only the
// constant per-chunk dispatch closures otherwise (gated by A-SERVE).
//
// The compact verdict table is the serving layer's own cache: a
// fingerprint-keyed LRU of 3-byte verdicts in front of the shared
// Determination cache, so a steady-state hit never copies the
// Determination's rationale/citation vectors.  Misses go through
// BatchEvaluator::evaluate, which keeps the shared cache coherent for
// the linter and Investigation::acquire.
//
// Backpressure reaches the pool too: chunk tasks enter via
// ThreadPool::try_submit with a bounded depth, and a refused chunk
// runs on the serving thread (caller-runs degradation — accepted work
// is never lost, the pool queue is never unbounded).
//
// Obs: serve.requests / serve.sheds / serve.rejected_malformed /
// serve.rejected_version / serve.responses / serve.cache_{hits,misses}
// / serve.pool_saturated counters, serve.request_latency_ns histogram
// (p50/p95/p99), serve.queue_depth gauge, a kError overload event on
// the first shed of a batch (flight-recorder dump when armed), and a
// kError + flight dump if the admission invariant ever breaks.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "legal/batch.h"
#include "serve/wire.h"
#include "util/arena.h"
#include "util/thread_pool.h"

namespace lexfor::serve {

// One offered frame's fate; see the taxonomy above.
enum class Admission : std::uint8_t {
  kAccepted,
  kShedQueueFull,
  kRejectedMalformed,
  kRejectedVersion,
};

// Per-batch (and, summed, per-server) admission accounting.
struct ServeStats {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_version = 0;
  std::uint64_t responses = 0;       // == accepted, always
  std::uint64_t cache_hits = 0;      // compact verdict-table hits
  std::uint64_t cache_misses = 0;    // engine evaluations
  std::uint64_t pool_saturated = 0;  // chunks degraded to caller-runs
  std::uint64_t batches = 0;

  [[nodiscard]] bool balanced() const noexcept {
    return accepted + shed_queue_full + rejected_malformed +
               rejected_version ==
           offered;
  }
};

struct ServerOptions {
  // Worker threads for the evaluation fan-out (0 = hardware
  // concurrency).  1 serves inline with zero dispatch overhead.
  unsigned workers = 1;
  // Bounded admission queue: at most this many accepted requests per
  // batch; the rest of a wave is shed (and counted).
  std::size_t queue_capacity = 4096;
  // ThreadPool::try_submit bound for chunk tasks; a refused chunk runs
  // on the serving thread.
  std::size_t pool_queue_depth = 256;
  // Requests per worker chunk.
  std::size_t grain = 256;
  // Entry budget for the compact verdict table.  66 distinct scenarios
  // serve a million subscribers; 1<<16 leaves room for real mixes.
  std::size_t verdict_table_capacity = 1 << 16;
  std::size_t verdict_table_shards = 16;
  // Passed through to the BatchEvaluator (shared cache by default).
  legal::BatchOptions batch;
};

// The verdict of a scenario, compacted to what the wire answers with.
struct CompactVerdict {
  std::uint8_t needs_process = 0;
  std::uint8_t required_process = 0;
  std::uint8_t required_proof = 0;
};

// Per-client channel state, created by VerdictServer::connect().  All
// serving scratch lives here, so two connections never contend on
// buffers and a connection's steady state is allocation-flat.
class Connection {
 public:
  [[nodiscard]] const std::vector<std::uint8_t>& responses() const noexcept {
    return responses_;
  }
  [[nodiscard]] const util::Arena& arena() const noexcept { return arena_; }
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.capacity();
  }
  [[nodiscard]] std::size_t response_capacity() const noexcept {
    return responses_.capacity();
  }
  [[nodiscard]] std::uint64_t batches_served() const noexcept {
    return batches_served_;
  }

 private:
  friend class VerdictServer;
  explicit Connection(std::size_t queue_capacity);

  util::Arena arena_;
  std::vector<wire::Request> slots_;       // decoded requests, recycled
  std::vector<std::uint8_t> responses_;    // encoded response frames
  std::uint64_t batches_served_ = 0;
};

class VerdictServer {
 public:
  explicit VerdictServer(ServerOptions options = {});

  // A new channel sized to this server's queue bound.
  [[nodiscard]] Connection connect() const;

  // Serves one batch of concatenated request frames: admission →
  // fan-out evaluation → responses appended to conn.responses() in
  // request order (one response frame per ACCEPTED request, none for
  // shed/rejected ones — a real transport would carry the shed signal
  // out of band, and the stats carry it here).  The connection's
  // previous responses are discarded and its arena epoch is reset.
  // Returns the batch's admission stats; the invariant
  // stats.balanced() && responses == accepted holds on every return.
  //
  // Thread-safe across distinct connections; a single Connection must
  // not be served from two threads at once.
  ServeStats serve(Connection& conn, std::span<const std::uint8_t> frames);

  // Cumulative accounting across all batches and connections.
  [[nodiscard]] ServeStats stats() const;

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] unsigned workers() const noexcept { return pool_.size(); }
  [[nodiscard]] const legal::BatchEvaluator& evaluator() const noexcept {
    return batch_;
  }

 private:
  // Scratch slot for one accepted request, carved from the connection
  // arena per batch (trivially destructible by design).
  struct Pending {
    CompactVerdict verdict;
    std::uint8_t cache_hit = 0;
    std::uint32_t server_ns = 0;  // clamped; 4.2s dwarfs any eval
  };

  void evaluate_range(Connection& conn, Pending* pending, std::size_t begin,
                      std::size_t end) const;

  ServerOptions options_;
  legal::BatchEvaluator batch_;
  // Fingerprint -> compact verdict; the Determination stays in the
  // shared cache, this table answers the wire without copying it.
  mutable util::ShardedLruCache<legal::ScenarioFingerprint, CompactVerdict,
                                legal::FingerprintHash>
      table_;
  mutable util::ThreadPool pool_;

  // Cumulative stats; relaxed atomics, folded into a ServeStats copy
  // by stats().
  mutable std::atomic<std::uint64_t> tot_offered_{0};
  mutable std::atomic<std::uint64_t> tot_accepted_{0};
  mutable std::atomic<std::uint64_t> tot_shed_{0};
  mutable std::atomic<std::uint64_t> tot_malformed_{0};
  mutable std::atomic<std::uint64_t> tot_version_{0};
  mutable std::atomic<std::uint64_t> tot_responses_{0};
  mutable std::atomic<std::uint64_t> tot_hits_{0};
  mutable std::atomic<std::uint64_t> tot_misses_{0};
  mutable std::atomic<std::uint64_t> tot_pool_saturated_{0};
  mutable std::atomic<std::uint64_t> tot_batches_{0};
};

}  // namespace lexfor::serve
