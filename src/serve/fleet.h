// serve::SyntheticFleet — a million-subscriber client population for
// the verdict server.
//
// The fleet models what the paper implies a provider-side compliance
// gate faces: an enormous subscriber base whose investigative
// touchpoints keep asking the same few dozen doctrinal questions (the
// Table-1 rows and the scenario library).  Holding a million client
// objects would be pointless — a client IS its identity, so the fleet
// is stateless: client c's k-th request in wave w is a pure function
// of (seed, wave, client), drawn through Rng::sub_stream.  Two
// consequences the tests pin:
//
//   - deterministic: the same (seed, fleet_size, wave) always yields
//     the same byte stream, and
//   - order-independent: generating clients [0,n) in any order, or a
//     sub-range in isolation, produces each client's frames unchanged
//     (sub_stream derives from the counter, not from parent state).
//
// Encoding cost is amortized by a template table: all 66 distinct
// scenarios (20 Table-1 rows + the scenario library) are encoded once
// at construction; emitting a request memcpys the template and patches
// the request id in place at wire::kRequestIdOffset.  Generation is
// therefore allocation-free after construction (the output vector's
// capacity permitting), which keeps the A-SERVE bench measuring the
// server, not the client.
//
// request_id packs (wave << 48) | client, so a response can be traced
// back to the exact subscriber and wave that asked — and so ids never
// collide across waves without any coordination.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "legal/scenario.h"

namespace lexfor::serve {

struct FleetOptions {
  std::uint64_t seed = 0x1e9a1f0c5eedULL;
  // Subscriber population.  Only identity math scales with this — a
  // million clients cost the same memory as ten.
  std::uint64_t fleet_size = 1'000'000;
  // Requests each client issues per wave.
  std::uint32_t requests_per_client = 1;
};

class SyntheticFleet {
 public:
  explicit SyntheticFleet(FleetOptions options = {});

  // Appends the request frames of clients [first, first + count) for
  // `wave` to `out`, in client order.  Deterministic in (seed, wave,
  // client); independent of any other range or wave generated before.
  void generate(std::uint64_t wave, std::uint64_t first, std::uint64_t count,
                std::vector<std::uint8_t>& out) const;

  // Convenience: the whole fleet's wave.
  void generate_wave(std::uint64_t wave, std::vector<std::uint8_t>& out) const {
    generate(wave, 0, options_.fleet_size, out);
  }

  // The scenario client `client` asks about with its k-th request of
  // `wave` — the oracle the bench compares server verdicts against.
  [[nodiscard]] const legal::Scenario& scenario_for(std::uint64_t wave,
                                                    std::uint64_t client,
                                                    std::uint32_t k) const;

  [[nodiscard]] static std::uint64_t request_id(std::uint64_t wave,
                                                std::uint64_t client) noexcept {
    return (wave << 48) | (client & 0xFFFFFFFFFFFFULL);
  }

  // Worst-case bytes one client contributes to a wave (every template
  // frame is the same size for a given scenario; this is the max over
  // the mix) — lets callers reserve output buffers up front.
  [[nodiscard]] std::size_t max_bytes_per_client() const noexcept;

  [[nodiscard]] const FleetOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::size_t mix_size() const noexcept {
    return scenarios_.size();
  }

 private:
  [[nodiscard]] std::size_t pick(std::uint64_t wave, std::uint64_t client,
                                 std::uint32_t k) const;

  FleetOptions options_;
  // The scenario mix (Table-1 rows then library scenes) and each one's
  // pre-encoded request frame with a zero request id.
  std::vector<legal::Scenario> scenarios_;
  std::vector<std::vector<std::uint8_t>> templates_;
  std::size_t max_template_bytes_ = 0;
};

}  // namespace lexfor::serve
