// serve::wire — the compact binary scenario encoding of the verdict
// service.
//
// A verdict server answering compliance queries at ISP traffic rates
// cannot parse text: the wire format is the PR-3 canonical fingerprint
// field schema (legal/batch.cpp hash_canonical) lifted into a framed
// request/response encoding — every field fixed-width little-endian,
// strings length-prefixed, booleans bit-packed into one u32 in the
// exact fingerprint pack order, all under a versioned header carrying a
// request id.  Because the payload field order IS the fingerprint
// order, a decoded request fingerprints identically to the scenario the
// client encoded, which is what routes it through the shared verdict
// cache (WireRoundTripPreservesFingerprint pins this).
//
// The decoder is STRICT and CANONICAL: magic, version, kind, the
// zeroed reserved word, the exact frame length, string-length bounds,
// enum ranges and the unused flag bits are all validated before one
// output byte is written.  Consequences:
//
//   - every accepted frame re-encodes byte-identical (there is exactly
//     one encoding of any scenario, so encode(decode(f)) == f — the
//     property the wire fuzz gate leans on), and
//   - the reject path never allocates: validation reads the input span
//     only, and the Status messages are short enough for the small-
//     string buffer.  A server being fuzzed or flooded with garbage
//     sheds it at decode cost, not at malloc cost.
//
// Reject taxonomy (mirrored by serve::VerdictServer's admission
// counters): a frame whose magic parses but whose version byte is
// unknown fails with kFailedPrecondition ("version skew" — the peer
// speaks a different protocol revision); every other defect is
// kInvalidArgument ("malformed").  Truncation inside the header is
// malformed too: there is no version byte to trust.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "legal/engine.h"
#include "legal/scenario.h"
#include "util/status.h"

namespace lexfor::serve::wire {

// 'L' 'X' 'S' 'V' in byte order on the wire (read as LE u32).
inline constexpr std::uint32_t kMagic = 0x5653584Cu;
inline constexpr std::uint8_t kWireVersion = 1;

enum class FrameKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

// Fixed header: magic u32 | version u8 | kind u8 | reserved u16 (zero)
// | frame_len u32 (total frame bytes, header included) | request_id u64.
inline constexpr std::size_t kHeaderBytes = 20;
inline constexpr std::size_t kRequestIdOffset = 12;

// Hard per-string bound: keeps a hostile length prefix from turning
// into a giant allocation before the frame-length cross-check runs.
inline constexpr std::size_t kMaxStringBytes = 4096;

// Number of Scenario booleans bit-packed into the flags word, in the
// canonical fingerprint pack order.  Bits >= this count must be zero.
inline constexpr unsigned kScenarioBoolCount = 23;

// Fixed-size portion of a request payload: six enum bytes + flags u32
// + two string length prefixes.
inline constexpr std::size_t kRequestFixedPayloadBytes = 6 + 4 + 4 + 4;

// Response payload: status u8 | flags u8 (bit0 needs_process, bit1
// cache_hit) | required_process u8 | required_proof u8 | server_ns u64.
inline constexpr std::size_t kResponsePayloadBytes = 4 + 8;
inline constexpr std::size_t kResponseFrameBytes =
    kHeaderBytes + kResponsePayloadBytes;

struct Request {
  std::uint64_t request_id = 0;
  legal::Scenario scenario;
};

struct Response {
  std::uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  bool needs_process = false;
  bool cache_hit = false;
  legal::ProcessKind required_process = legal::ProcessKind::kNone;
  legal::StandardOfProof required_proof = legal::StandardOfProof::kNone;
  // Server-side handling time for this request, nanoseconds.
  std::uint64_t server_ns = 0;
};

// Header fields of one frame, validated but not yet decoded.
struct FrameInfo {
  std::uint8_t version = 0;
  FrameKind kind = FrameKind::kRequest;
  std::uint64_t request_id = 0;
  std::size_t frame_len = 0;  // bytes this frame occupies in the buffer
};

// Validates the header at the FRONT of `buf` (which may hold further
// concatenated frames) without touching the payload: magic, kind,
// reserved word, and that frame_len is in [kHeaderBytes, buf.size()].
// The header layout is declared VERSION-INVARIANT, so peek does NOT
// reject version skew — it reports the version and a trustworthy
// frame_len, letting a server skip a future-revision frame and keep
// its place in the stream (decode_* still refuses the payload).  Never
// allocates on failure.  This is how a server walks a connection
// buffer: peek, slice frame_len bytes, decode, advance; a peek failure
// means framing is lost and the rest of the buffer is garbage.
[[nodiscard]] Result<FrameInfo> peek_frame(std::span<const std::uint8_t> buf);

// Appends one encoded request frame to `out`.  The encoding is
// canonical: there is exactly one byte sequence for any scenario.
// Strings longer than kMaxStringBytes are truncated at encode time so
// an encoded frame always decodes (the library/Table-1 names are tens
// of bytes; the cap is a wire invariant, not a working limit).
void encode_request(const legal::Scenario& s, std::uint64_t request_id,
                    std::vector<std::uint8_t>& out);

// Strict decode of exactly one request frame (`frame.size()` must equal
// the header's frame_len).  On success `out` holds the request — string
// members are assign()ed, so a reused Request keeps its capacity and a
// steady-state decode loop performs no heap traffic.  On failure `out`
// is untouched and nothing is allocated.
[[nodiscard]] Status decode_request(std::span<const std::uint8_t> frame,
                                    Request& out);

// Validation-only pass over a request frame: every check decode_request
// performs, but no output is written at all.  Used by the server's
// shed path: a frame refused for overload is still classified
// malformed/version-skew/valid without paying string assignment.
[[nodiscard]] Status validate_request(std::span<const std::uint8_t> frame);

// Appends one encoded response frame (fixed kResponseFrameBytes).
void encode_response(const Response& r, std::vector<std::uint8_t>& out);

// Strict decode of exactly one response frame.
[[nodiscard]] Status decode_response(std::span<const std::uint8_t> frame,
                                     Response& out);

// The canonical response for a determination: verdict, required
// process/proof, cache-hit flag and timing, under the request's id.
[[nodiscard]] Response make_response(std::uint64_t request_id,
                                     const legal::Determination& d,
                                     bool cache_hit, std::uint64_t server_ns);

}  // namespace lexfor::serve::wire
