#include "serve/wire.h"

#include <algorithm>
#include <cstring>

namespace lexfor::serve::wire {
namespace {

// Reject messages must stay inside the small-string buffer (<= 15
// bytes on libstdc++/libc++): the decoder promises a heap-free reject
// path, and Status copies the message into a std::string.
Status Malformed(const char* msg) {
  return Status{StatusCode::kInvalidArgument, msg};
}
Status VersionSkew() {
  return Status{StatusCode::kFailedPrecondition, "version skew"};
}

// Raw LE primitives over the frame buffer.  memcpy is the sanctioned
// unaligned-access idiom (see util/bytes.h).
std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

// The bit-packed boolean block, in the EXACT order of the PR-3
// canonical fingerprint (legal/batch.cpp hash_canonical): two legally
// distinct scenarios must differ on the wire wherever they differ in
// the cache key.  WireCoversEveryScenarioField cross-checks this
// against the fingerprint per field.
std::uint32_t pack_bools(const legal::Scenario& s) noexcept {
  std::uint32_t bits = 0;
  unsigned bit = 0;
  const auto pack = [&bits, &bit](bool v) {
    bits |= (v ? 1u : 0u) << bit++;
  };
  pack(s.acting_under_color_of_law);
  pack(s.knowingly_exposed_to_public);
  pack(s.shared_with_third_party);
  pack(s.delivered_to_recipient);
  pack(s.inside_home);
  pack(s.via_sense_enhancing_tech);
  pack(s.tech_in_general_public_use);
  pack(s.readily_accessible_to_public);
  pack(s.encrypted);
  pack(s.message_opened_by_recipient);
  pack(s.consent_revoked);
  pack(s.target_area_password_protected);
  pack(s.is_victim_system);
  pack(s.targets_attacker_system);
  pack(s.exigent_circumstances);
  pack(s.in_plain_view);
  pack(s.target_on_probation);
  pack(s.emergency_pen_trap);
  pack(s.provider_self_protection);
  pack(s.device_lawfully_in_custody);
  pack(s.contents_previously_lawfully_acquired);
  pack(s.credentials_lawfully_obtained);
  pack(s.target_arrested);
  static_assert(kScenarioBoolCount == 23,
                "pack_bools and kScenarioBoolCount out of sync");
  return bits;
}

void unpack_bools(std::uint32_t bits, legal::Scenario& s) noexcept {
  unsigned bit = 0;
  const auto unpack = [&bits, &bit](bool& v) {
    v = ((bits >> bit++) & 1u) != 0;
  };
  unpack(s.acting_under_color_of_law);
  unpack(s.knowingly_exposed_to_public);
  unpack(s.shared_with_third_party);
  unpack(s.delivered_to_recipient);
  unpack(s.inside_home);
  unpack(s.via_sense_enhancing_tech);
  unpack(s.tech_in_general_public_use);
  unpack(s.readily_accessible_to_public);
  unpack(s.encrypted);
  unpack(s.message_opened_by_recipient);
  unpack(s.consent_revoked);
  unpack(s.target_area_password_protected);
  unpack(s.is_victim_system);
  unpack(s.targets_attacker_system);
  unpack(s.exigent_circumstances);
  unpack(s.in_plain_view);
  unpack(s.target_on_probation);
  unpack(s.emergency_pen_trap);
  unpack(s.provider_self_protection);
  unpack(s.device_lawfully_in_custody);
  unpack(s.contents_previously_lawfully_acquired);
  unpack(s.credentials_lawfully_obtained);
  unpack(s.target_arrested);
}

// Inclusive upper bounds of the enum ranges the decoder accepts.  A
// byte outside the range cannot name a doctrine posture, so the frame
// is malformed — accepting it would round-trip but hand the engine an
// impossible scenario.
constexpr std::uint8_t kMaxActor =
    static_cast<std::uint8_t>(legal::ActorKind::kPrivateParty);
constexpr std::uint8_t kMaxData =
    static_cast<std::uint8_t>(legal::DataKind::kTransactionalRecords);
constexpr std::uint8_t kMaxState =
    static_cast<std::uint8_t>(legal::DataState::kPublicVenue);
constexpr std::uint8_t kMaxTiming =
    static_cast<std::uint8_t>(legal::Timing::kStored);
constexpr std::uint8_t kMaxProvider =
    static_cast<std::uint8_t>(legal::ProviderClass::kNonPublic);
constexpr std::uint8_t kMaxConsent =
    static_cast<std::uint8_t>(legal::ConsentKind::kPolicyBanner);
constexpr std::uint8_t kMaxProcess =
    static_cast<std::uint8_t>(legal::ProcessKind::kWiretapOrder);
constexpr std::uint8_t kMaxProof =
    static_cast<std::uint8_t>(legal::StandardOfProof::kProbableCausePlus);
constexpr std::uint8_t kMaxStatusCode =
    static_cast<std::uint8_t>(StatusCode::kResourceExhausted);

void encode_header(FrameKind kind, std::uint64_t request_id,
                   std::size_t frame_len, std::vector<std::uint8_t>& out) {
  put_u32(out, kMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(kind));
  out.push_back(0);  // reserved
  out.push_back(0);
  put_u32(out, static_cast<std::uint32_t>(frame_len));
  put_u64(out, request_id);
}

// Everything decode_request checks, sans output.  Returns the parsed
// string extents through the out-params so decode_request can assign
// without re-walking.  Allocation-free.
Status validate_request_impl(std::span<const std::uint8_t> frame,
                             std::size_t* name_at, std::size_t* name_len,
                             std::size_t* juris_at,
                             std::size_t* juris_len) noexcept {
  if (frame.size() < kHeaderBytes) return Malformed("truncated");
  const std::uint8_t* p = frame.data();
  if (get_u32(p) != kMagic) return Malformed("bad magic");
  if (p[4] != kWireVersion) return VersionSkew();
  if (p[5] != static_cast<std::uint8_t>(FrameKind::kRequest)) {
    return Malformed("bad kind");
  }
  if (p[6] != 0 || p[7] != 0) return Malformed("bad reserved");
  if (get_u32(p + 8) != frame.size()) return Malformed("bad length");

  std::size_t at = kHeaderBytes;
  const auto remaining = [&] { return frame.size() - at; };
  if (remaining() < 4) return Malformed("truncated");
  const std::uint32_t nlen = get_u32(p + at);
  at += 4;
  if (nlen > kMaxStringBytes || nlen > remaining()) {
    return Malformed("bad name len");
  }
  *name_at = at;
  *name_len = nlen;
  at += nlen;

  if (remaining() < 6 + 4 + 4) return Malformed("truncated");
  if (p[at + 0] > kMaxActor) return Malformed("bad actor");
  if (p[at + 1] > kMaxData) return Malformed("bad data kind");
  if (p[at + 2] > kMaxState) return Malformed("bad state");
  if (p[at + 3] > kMaxTiming) return Malformed("bad timing");
  if (p[at + 4] > kMaxProvider) return Malformed("bad provider");
  if (p[at + 5] > kMaxConsent) return Malformed("bad consent");
  at += 6;
  const std::uint32_t bits = get_u32(p + at);
  at += 4;
  if ((bits >> kScenarioBoolCount) != 0) return Malformed("bad flags");

  const std::uint32_t jlen = get_u32(p + at);
  at += 4;
  if (jlen > kMaxStringBytes || jlen > remaining()) {
    return Malformed("bad juris len");
  }
  *juris_at = at;
  *juris_len = jlen;
  at += jlen;

  if (at != frame.size()) return Malformed("overlong");
  return Status::Ok();
}

}  // namespace

Result<FrameInfo> peek_frame(std::span<const std::uint8_t> buf) {
  if (buf.size() < kHeaderBytes) return Malformed("truncated");
  const std::uint8_t* p = buf.data();
  if (get_u32(p) != kMagic) return Malformed("bad magic");
  const std::uint8_t kind = p[5];
  if (kind != static_cast<std::uint8_t>(FrameKind::kRequest) &&
      kind != static_cast<std::uint8_t>(FrameKind::kResponse)) {
    return Malformed("bad kind");
  }
  // The reserved word is a v1 payload rule, checked by decode_*: a
  // future revision may use it, and peek must stay able to skip such
  // frames.
  const std::uint32_t frame_len = get_u32(p + 8);
  if (frame_len < kHeaderBytes || frame_len > buf.size()) {
    return Malformed("bad length");
  }
  FrameInfo info;
  info.version = p[4];
  info.kind = static_cast<FrameKind>(kind);
  info.request_id = get_u64(p + kRequestIdOffset);
  info.frame_len = frame_len;
  return info;
}

void encode_request(const legal::Scenario& s, std::uint64_t request_id,
                    std::vector<std::uint8_t>& out) {
  const std::size_t name_len = std::min(s.name.size(), kMaxStringBytes);
  const std::size_t juris_len =
      std::min(s.jurisdiction.size(), kMaxStringBytes);
  const std::size_t frame_len =
      kHeaderBytes + kRequestFixedPayloadBytes + name_len + juris_len;
  out.reserve(out.size() + frame_len);
  encode_header(FrameKind::kRequest, request_id, frame_len, out);
  put_u32(out, static_cast<std::uint32_t>(name_len));
  out.insert(out.end(), s.name.data(), s.name.data() + name_len);
  out.push_back(static_cast<std::uint8_t>(s.actor));
  out.push_back(static_cast<std::uint8_t>(s.data));
  out.push_back(static_cast<std::uint8_t>(s.state));
  out.push_back(static_cast<std::uint8_t>(s.timing));
  out.push_back(static_cast<std::uint8_t>(s.provider));
  out.push_back(static_cast<std::uint8_t>(s.consent));
  put_u32(out, pack_bools(s));
  put_u32(out, static_cast<std::uint32_t>(juris_len));
  out.insert(out.end(), s.jurisdiction.data(),
             s.jurisdiction.data() + juris_len);
}

Status validate_request(std::span<const std::uint8_t> frame) {
  std::size_t name_at = 0, name_len = 0, juris_at = 0, juris_len = 0;
  return validate_request_impl(frame, &name_at, &name_len, &juris_at,
                               &juris_len);
}

Status decode_request(std::span<const std::uint8_t> frame, Request& out) {
  std::size_t name_at = 0, name_len = 0, juris_at = 0, juris_len = 0;
  if (Status st = validate_request_impl(frame, &name_at, &name_len, &juris_at,
                                        &juris_len);
      !st.ok()) {
    return st;
  }
  // Fully validated: every write below succeeds.  assign() reuses the
  // strings' existing capacity, so a recycled Request decodes without
  // heap traffic once warm.
  const std::uint8_t* p = frame.data();
  out.request_id = get_u64(p + kRequestIdOffset);
  legal::Scenario& s = out.scenario;
  s.name.assign(reinterpret_cast<const char*>(p + name_at), name_len);
  const std::size_t e = name_at + name_len;
  s.actor = static_cast<legal::ActorKind>(p[e + 0]);
  s.data = static_cast<legal::DataKind>(p[e + 1]);
  s.state = static_cast<legal::DataState>(p[e + 2]);
  s.timing = static_cast<legal::Timing>(p[e + 3]);
  s.provider = static_cast<legal::ProviderClass>(p[e + 4]);
  s.consent = static_cast<legal::ConsentKind>(p[e + 5]);
  unpack_bools(get_u32(p + e + 6), s);
  s.jurisdiction.assign(reinterpret_cast<const char*>(p + juris_at),
                        juris_len);
  return Status::Ok();
}

void encode_response(const Response& r, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + kResponseFrameBytes);
  encode_header(FrameKind::kResponse, r.request_id, kResponseFrameBytes, out);
  out.push_back(static_cast<std::uint8_t>(r.status));
  out.push_back(static_cast<std::uint8_t>((r.needs_process ? 1u : 0u) |
                                          (r.cache_hit ? 2u : 0u)));
  out.push_back(static_cast<std::uint8_t>(r.required_process));
  out.push_back(static_cast<std::uint8_t>(r.required_proof));
  put_u64(out, r.server_ns);
}

Status decode_response(std::span<const std::uint8_t> frame, Response& out) {
  if (frame.size() < kHeaderBytes) return Malformed("truncated");
  const std::uint8_t* p = frame.data();
  if (get_u32(p) != kMagic) return Malformed("bad magic");
  if (p[4] != kWireVersion) return VersionSkew();
  if (p[5] != static_cast<std::uint8_t>(FrameKind::kResponse)) {
    return Malformed("bad kind");
  }
  if (p[6] != 0 || p[7] != 0) return Malformed("bad reserved");
  if (get_u32(p + 8) != frame.size()) return Malformed("bad length");
  if (frame.size() != kResponseFrameBytes) return Malformed("bad length");
  const std::uint8_t* q = p + kHeaderBytes;
  if (q[0] > kMaxStatusCode) return Malformed("bad status");
  if ((q[1] & ~3u) != 0) return Malformed("bad flags");
  if (q[2] > kMaxProcess) return Malformed("bad process");
  if (q[3] > kMaxProof) return Malformed("bad proof");
  out.request_id = get_u64(p + kRequestIdOffset);
  out.status = static_cast<StatusCode>(q[0]);
  out.needs_process = (q[1] & 1u) != 0;
  out.cache_hit = (q[1] & 2u) != 0;
  out.required_process = static_cast<legal::ProcessKind>(q[2]);
  out.required_proof = static_cast<legal::StandardOfProof>(q[3]);
  out.server_ns = get_u64(q + 4);
  return Status::Ok();
}

Response make_response(std::uint64_t request_id,
                       const legal::Determination& d, bool cache_hit,
                       std::uint64_t server_ns) {
  Response r;
  r.request_id = request_id;
  r.status = StatusCode::kOk;
  r.needs_process = d.needs_process;
  r.cache_hit = cache_hit;
  r.required_process = d.required_process;
  r.required_proof = d.required_proof;
  r.server_ns = server_ns;
  return r;
}

}  // namespace lexfor::serve::wire
