#include "serve/fleet.h"

#include <cstring>

#include "legal/scene_table.h"
#include "legal/table1.h"
#include "serve/wire.h"
#include "util/rng.h"

namespace lexfor::serve {

SyntheticFleet::SyntheticFleet(FleetOptions options) : options_(options) {
  if (options_.fleet_size == 0) options_.fleet_size = 1;
  if (options_.requests_per_client == 0) options_.requests_per_client = 1;

  scenarios_.reserve(static_cast<std::size_t>(legal::table1::kSceneCount) +
                     legal::library::kSceneCount);
  for (const auto& scene : legal::table1::all_scenes()) {
    scenarios_.push_back(scene.scenario);
  }
  for (const auto& descriptor : legal::library::scenes()) {
    scenarios_.push_back(descriptor.build());
  }

  templates_.reserve(scenarios_.size());
  for (const auto& s : scenarios_) {
    std::vector<std::uint8_t> frame;
    wire::encode_request(s, /*request_id=*/0, frame);
    max_template_bytes_ =
        frame.size() > max_template_bytes_ ? frame.size() : max_template_bytes_;
    templates_.push_back(std::move(frame));
  }
}

std::size_t SyntheticFleet::pick(std::uint64_t wave, std::uint64_t client,
                                 std::uint32_t k) const {
  // One sub_stream per (wave, client): stream identity alone defines
  // the draws, so ranges and waves are independent by construction.
  // The wave folds into the seed (not the stream) so the same client
  // asks different questions across waves.
  Rng rng = Rng::sub_stream(options_.seed + wave * 0x9E3779B97F4A7C15ULL,
                            client);
  std::size_t choice = 0;
  for (std::uint32_t i = 0; i <= k; ++i) {
    choice = static_cast<std::size_t>(rng.uniform(scenarios_.size()));
  }
  return choice;
}

void SyntheticFleet::generate(std::uint64_t wave, std::uint64_t first,
                              std::uint64_t count,
                              std::vector<std::uint8_t>& out) const {
  for (std::uint64_t c = first; c < first + count; ++c) {
    Rng rng = Rng::sub_stream(options_.seed + wave * 0x9E3779B97F4A7C15ULL, c);
    const std::uint64_t id = request_id(wave, c);
    for (std::uint32_t k = 0; k < options_.requests_per_client; ++k) {
      const auto choice =
          static_cast<std::size_t>(rng.uniform(scenarios_.size()));
      const std::vector<std::uint8_t>& tmpl = templates_[choice];
      const std::size_t at = out.size();
      out.resize(at + tmpl.size());
      std::memcpy(out.data() + at, tmpl.data(), tmpl.size());
      // Patch the request id in place, little-endian like the encoder.
      for (unsigned b = 0; b < 8; ++b) {
        out[at + wire::kRequestIdOffset + b] =
            static_cast<std::uint8_t>(id >> (8 * b));
      }
    }
  }
}

const legal::Scenario& SyntheticFleet::scenario_for(std::uint64_t wave,
                                                    std::uint64_t client,
                                                    std::uint32_t k) const {
  return scenarios_[pick(wave, client, k)];
}

std::size_t SyntheticFleet::max_bytes_per_client() const noexcept {
  return max_template_bytes_ * options_.requests_per_client;
}

}  // namespace lexfor::serve
