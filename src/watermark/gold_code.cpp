#include "watermark/gold_code.h"

#include <cmath>

namespace lexfor::watermark {
namespace {

// Preferred-pair decimations: the second sequence is the first decimated
// by q = 2^k + 1 with gcd(n, k) chosen so the pair is preferred.  We
// tabulate a known-good decimation per degree (classical values).
int preferred_decimation(int degree) {
  switch (degree) {
    case 5: return 3;    // q = 2^1+1, n=5, k=1
    case 6: return 5;    // k=2
    case 7: return 3;
    case 9: return 3;
    case 10: return 5;
    case 11: return 3;
    default: return 0;   // no preferred pair tabulated (incl. degree 8)
  }
}

PnCode decimate(const PnCode& base, int q) {
  const std::size_t n = base.length();
  std::vector<std::int8_t> chips(n);
  for (std::size_t i = 0; i < n; ++i) {
    chips[i] = base.chips()[(i * static_cast<std::size_t>(q)) % n];
  }
  return PnCode::from_chips(std::move(chips)).value();
}

PnCode xor_shifted(const PnCode& u, const PnCode& v, std::size_t shift) {
  const std::size_t n = u.length();
  std::vector<std::int8_t> chips(n);
  for (std::size_t i = 0; i < n; ++i) {
    // In the +-1 domain, XOR of bits is the product of chips.
    chips[i] = static_cast<std::int8_t>(u.chips()[i] *
                                        v.chips()[(i + shift) % n]);
  }
  return PnCode::from_chips(std::move(chips)).value();
}

}  // namespace

Result<GoldCodeFamily> GoldCodeFamily::create(int degree) {
  const int q = preferred_decimation(degree);
  if (q == 0) {
    return InvalidArgument(
        "GoldCodeFamily: no preferred pair tabulated for degree " +
        std::to_string(degree) + " (supported: 5,6,7,9,10,11)");
  }
  auto base = PnCode::m_sequence(degree);
  if (!base.ok()) return base.status();
  const PnCode u = std::move(base).value();
  const PnCode v = decimate(u, q);

  const std::size_t n = u.length();
  std::vector<PnCode> family;
  family.reserve(n + 2);
  family.push_back(u);
  family.push_back(v);
  for (std::size_t shift = 0; shift < n; ++shift) {
    family.push_back(xor_shifted(u, v, shift));
  }
  return GoldCodeFamily{degree, std::move(family)};
}

double GoldCodeFamily::cross_correlation_bound() const noexcept {
  // t(n) = 2^((n+2)/2) + 1 for even n, 2^((n+1)/2) + 1 for odd n.
  const double n = static_cast<double>(degree_);
  const double t = degree_ % 2 == 0 ? std::exp2((n + 2.0) / 2.0) + 1.0
                                    : std::exp2((n + 1.0) / 2.0) + 1.0;
  return t / static_cast<double>(code_length());
}

}  // namespace lexfor::watermark
