#include "watermark/multibit.h"

#include <cmath>
#include <string>

#include "obs/obs.h"
#include "watermark/scan_batch.h"

namespace lexfor::watermark {

Result<MultiBitEmbedder> MultiBitEmbedder::create(
    PnCode code, std::vector<std::int8_t> bits, MultiBitParams params) {
  if (bits.empty()) return InvalidArgument("multibit: empty payload");
  for (const auto b : bits) {
    if (b != 1 && b != -1) {
      return InvalidArgument("multibit: payload bits must be +-1");
    }
  }
  if (params.chips_per_bit == 0) {
    return InvalidArgument("multibit: chips_per_bit must be positive");
  }
  if (bits.size() * params.chips_per_bit > code.length()) {
    return InvalidArgument(
        "multibit: payload needs " +
        std::to_string(bits.size() * params.chips_per_bit) +
        " chips but the code has " + std::to_string(code.length()));
  }
  return MultiBitEmbedder{std::move(code), std::move(bits), params};
}

double MultiBitEmbedder::multiplier(SimTime now) const noexcept {
  if (now < params_.start) return 1.0;
  const std::int64_t elapsed = now.us - params_.start.us;
  const auto chip_idx =
      static_cast<std::size_t>(elapsed / params_.chip_duration.us);
  const std::size_t total_chips = bits_.size() * params_.chips_per_bit;
  if (chip_idx >= total_chips) return 1.0;
  const std::size_t bit_idx = chip_idx / params_.chips_per_bit;
  return 1.0 + params_.depth * static_cast<double>(bits_[bit_idx]) *
                   static_cast<double>(code_.chips()[chip_idx]);
}

SimTime MultiBitEmbedder::end() const noexcept {
  return params_.start +
         params_.chip_duration *
             static_cast<std::int64_t>(bits_.size() * params_.chips_per_bit);
}

Status MultiBitDecoder::validate(std::size_t series_len,
                                 std::size_t num_bits) const {
  if (chips_per_bit_ == 0) {
    return InvalidArgument("multibit decode: chips_per_bit is zero");
  }
  const std::size_t need = num_bits * chips_per_bit_;
  if (need > kernel_.length()) {
    return InvalidArgument("multibit decode: payload exceeds code length");
  }
  if (series_len < need) {
    return InvalidArgument("multibit decode: series shorter than payload (" +
                           std::to_string(series_len) + " < " +
                           std::to_string(need) + " chips)");
  }
  return Status::Ok();
}

Result<MultiBitDecodeResult> MultiBitDecoder::decode(
    std::span<const double> chip_rates, std::size_t num_bits) const {
  if (auto s = validate(chip_rates.size(), num_bits); !s.ok()) return s;

  LEXFOR_OBS_SPAN(obs::Level::kInfo, "watermark", "multibit_decode",
                  "bits=" + std::to_string(num_bits) +
                      ",chips_per_bit=" + std::to_string(chips_per_bit_),
                  obs::no_sim_time());
  // Segment-local mean removal: the traffic baseline may drift across a
  // long mark, so each bit despreads against its own segment mean — the
  // kernel's despread primitive does exactly that.
  MultiBitDecodeResult out;
  out.bits.reserve(num_bits);
  out.correlations.reserve(num_bits);
  for (std::size_t b = 0; b < num_bits; ++b) {
    const std::size_t begin = b * chips_per_bit_;
    const double corr =
        kernel_.despread(chip_rates.data() + begin, begin, chips_per_bit_);
    out.correlations.push_back(corr);
    out.bits.push_back(corr >= 0.0 ? std::int8_t{1} : std::int8_t{-1});
  }
  return out;
}

Result<MultiBitDecodeResult> MultiBitDecoder::decode_with(
    const ScanBatch& batch, std::span<const double> chip_rates,
    std::size_t num_bits) const {
  if (auto s = validate(chip_rates.size(), num_bits); !s.ok()) return s;

  std::vector<ScanJob> jobs(num_bits);
  for (std::size_t b = 0; b < num_bits; ++b) {
    const std::size_t begin = b * chips_per_bit_;
    jobs[b].kernel = &kernel_;
    jobs[b].rates = chip_rates.subspan(begin, chips_per_bit_);
    jobs[b].max_offset = 0;  // segments are aligned by construction
    jobs[b].code_begin = begin;
    jobs[b].code_length = chips_per_bit_;
  }
  const auto results = batch.run(jobs);

  MultiBitDecodeResult out;
  out.bits.reserve(num_bits);
  out.correlations.reserve(num_bits);
  for (const auto& r : results) {
    if (!r.ok()) return r.status();
    const double corr = r.value().best.correlation;
    out.correlations.push_back(corr);
    out.bits.push_back(corr >= 0.0 ? std::int8_t{1} : std::int8_t{-1});
  }
  return out;
}

Result<MultiBitDecodeResult> MultiBitDecoder::decode_and_compare(
    std::span<const double> chip_rates,
    const std::vector<std::int8_t>& truth) const {
  auto result = decode(chip_rates, truth.size());
  if (!result.ok()) return result;
  auto out = std::move(result).value();
  std::size_t errors = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    errors += out.bits[i] != truth[i];
  }
  out.bit_error_rate =
      truth.empty() ? 0.0
                    : static_cast<double>(errors) /
                          static_cast<double>(truth.size());
  return out;
}

}  // namespace lexfor::watermark
