// Gold codes: families of near-orthogonal PN codes.
//
// Marking ONE flow needs one m-sequence; marking MANY candidate flows
// simultaneously (e.g. every account on the seized server at once, each
// with its own code) needs a family of codes with uniformly low
// cross-correlation, so one flow's mark never despreads under another
// flow's code.  Gold's construction XORs a preferred pair of
// m-sequences at every relative shift, yielding 2^n + 1 codes whose
// pairwise cross-correlation is bounded by ~2^((n+2)/2) / N.

#pragma once

#include <vector>

#include "watermark/pn_code.h"

namespace lexfor::watermark {

class GoldCodeFamily {
 public:
  // Builds the family for `degree` in {5, 6, 7, 9, 10, 11} (degrees where
  // a preferred pair exists and is tabulated here; degree 8 has no
  // preferred pair and is rejected).  The family holds 2^degree + 1
  // codes of length 2^degree - 1.
  static Result<GoldCodeFamily> create(int degree);

  [[nodiscard]] std::size_t size() const noexcept { return codes_.size(); }
  [[nodiscard]] std::size_t code_length() const noexcept {
    return codes_.empty() ? 0 : codes_.front().length();
  }
  [[nodiscard]] const PnCode& code(std::size_t index) const {
    return codes_.at(index);
  }

  // The theoretical three-valued cross-correlation bound t(n)/N.
  [[nodiscard]] double cross_correlation_bound() const noexcept;

 private:
  explicit GoldCodeFamily(int degree, std::vector<PnCode> codes)
      : degree_(degree), codes_(std::move(codes)) {}

  int degree_;
  std::vector<PnCode> codes_;
};

}  // namespace lexfor::watermark
