// Multi-bit DSSS watermarking.
//
// The cited technique ("Long PN Code Based DSSS Watermarking",
// INFOCOM'11) embeds a multi-bit watermark: bit i (+-1) multiplies
// chips [i*L, (i+1)*L) of a long PN code, and the product modulates the
// traffic rate.  The decoder despreads each segment separately,
// recovering the bit sequence; bit error rate (BER) is the fidelity
// metric.  A multi-bit mark lets the investigator embed a case id or
// timestamp rather than a bare presence signal.

#pragma once

#include <span>
#include <vector>

#include "util/sim_time.h"
#include "watermark/correlate.h"
#include "watermark/pn_code.h"

namespace lexfor::watermark {

class ScanBatch;

struct MultiBitParams {
  SimTime start;
  SimDuration chip_duration = SimDuration::from_ms(400.0);
  double depth = 0.3;
  std::size_t chips_per_bit = 63;  // spreading factor L
};

class MultiBitEmbedder {
 public:
  // `bits` in {-1,+1}; requires code.length() >= bits.size() * chips_per_bit.
  static Result<MultiBitEmbedder> create(PnCode code,
                                         std::vector<std::int8_t> bits,
                                         MultiBitParams params);

  // Rate multiplier at `now`: 1 + depth * bit[i] * chip[j] within the
  // mark window, 1.0 outside.
  [[nodiscard]] double multiplier(SimTime now) const noexcept;

  [[nodiscard]] SimTime end() const noexcept;
  [[nodiscard]] std::size_t payload_bits() const noexcept {
    return bits_.size();
  }

 private:
  MultiBitEmbedder(PnCode code, std::vector<std::int8_t> bits,
                   MultiBitParams params)
      : code_(std::move(code)), bits_(std::move(bits)), params_(params) {}

  PnCode code_;
  std::vector<std::int8_t> bits_;
  MultiBitParams params_;
};

struct MultiBitDecodeResult {
  std::vector<std::int8_t> bits;       // decoded +-1 per segment
  std::vector<double> correlations;    // per-segment despread score
  // Filled by decode_and_compare: fraction of bits decoded wrongly.
  double bit_error_rate = 0.0;
};

class MultiBitDecoder {
 public:
  MultiBitDecoder(PnCode code, std::size_t chips_per_bit)
      : kernel_(std::move(code)), chips_per_bit_(chips_per_bit) {}

  // `chip_rates`: observed rate per chip window, aligned with chip 0.
  // Decodes floor(min(len, code_len) / L) bits.  Each bit despreads
  // through the shared CorrelationKernel segment primitive
  // (segment-local mean removal, zero per-bit allocation).
  [[nodiscard]] Result<MultiBitDecodeResult> decode(
      std::span<const double> chip_rates, std::size_t num_bits) const;

  // Same decode, with the per-bit despreads fanned across `batch` as
  // (segment × code-segment) scan jobs — bit-identical to decode(),
  // worth it for long payloads and wide spreading factors.
  [[nodiscard]] Result<MultiBitDecodeResult> decode_with(
      const ScanBatch& batch, std::span<const double> chip_rates,
      std::size_t num_bits) const;

  // Decodes and scores against the ground-truth bits.
  [[nodiscard]] Result<MultiBitDecodeResult> decode_and_compare(
      std::span<const double> chip_rates,
      const std::vector<std::int8_t>& truth) const;

 private:
  [[nodiscard]] Status validate(std::size_t series_len,
                                std::size_t num_bits) const;

  CorrelationKernel kernel_;
  std::size_t chips_per_bit_;
};

}  // namespace lexfor::watermark
