// ScanBatch: deterministic multi-flow watermark scan fan-out.
//
// The §IV.B collection point observes MANY candidate flows (the
// suspect, every decoy, every account of a Gold-code family), and each
// flow may need an offset scan.  Each (flow × code × offset-range) job
// is pure — CorrelationKernel is immutable after construction and the
// rate series is read-only — so the batch fans jobs across the shared
// util::ThreadPool and merges results in input order: slot i of the
// output always answers job i, bit-identical to running the jobs
// serially, whatever the pool size.
//
// Obs wiring: watermark.scan.batches / watermark.scan.flows /
// watermark.scan.offsets counters, the watermark.scan.latency_us
// per-job scan-latency histogram, and the watermark.scan.pool_queue_depth
// gauge.

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/thread_pool.h"
#include "watermark/correlate.h"

namespace lexfor::watermark {

// One despread job.  The kernel outlives the batch call and may be
// shared by any number of jobs (one kernel per code, not per flow).
struct ScanJob {
  const CorrelationKernel* kernel = nullptr;
  std::span<const double> rates;  // observed rate series, read in place
  std::size_t max_offset = 0;     // 0 = aligned detection only
  // Despread against code chips [code_begin, code_begin + code_length);
  // code_length 0 means the full code (multibit per-bit jobs use
  // segments).
  std::size_t code_begin = 0;
  std::size_t code_length = 0;
  // Opt this job into the vectorized lane (CorrelationKernel::scan_simd
  // — reassociated scores, verdict-identical and ULP-bounded; see
  // correlate.h).  Defaults to the scalar oracle lane.  Ignored (scalar
  // runs) when the lane is unavailable on this build/host.
  bool use_simd = false;
};

struct ScanBatchOptions {
  // 0 = std::thread::hardware_concurrency().  The pool is created
  // lazily on the first run() call, so single-flow users never pay for
  // worker threads.
  unsigned threads = 0;
  // Batch-wide SIMD opt-in: every job runs the vectorized lane as if
  // its own use_simd flag were set.  Per-job ScanJob::use_simd still
  // opts individual jobs in when this is false.
  bool use_simd = false;
};

class ScanBatch {
 public:
  ScanBatch() : ScanBatch(ScanBatchOptions{}) {}
  explicit ScanBatch(ScanBatchOptions options);

  // Runs every job and returns one Result per job, in input order.
  // A null kernel yields an InvalidArgument slot; a too-short series
  // yields that job's error; neither aborts the rest of the batch.
  [[nodiscard]] std::vector<Result<ScanResult>> run(
      std::span<const ScanJob> jobs) const;

  [[nodiscard]] unsigned threads() const noexcept { return options_.threads; }

 private:
  [[nodiscard]] util::ThreadPool& pool() const;

  ScanBatchOptions options_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace lexfor::watermark
