// Sliding-window correlation kernel for DSSS watermark detection.
//
// The §IV.B traceback runs the matched filter against EVERY candidate
// flow an ISP vantage point observes, and alignment-free detection runs
// it at every candidate offset of every flow.  The original scan path
// copied the tail of the rate series into a fresh vector per offset and
// recomputed the statistics from scratch through the allocating
// Detector::detect — O(k·n) flops buried under O(k·tail) copies and k
// heap allocations.  CorrelationKernel is the allocation-free core both
// Detector and the batch fan-out (scan_batch.h) sit on:
//
//   * the PN code is pre-converted once into a contiguous ±1.0 double
//     buffer, so the despread loop is a straight-line dot product with
//     no int8→double conversion per element;
//   * the per-offset mean/correlate passes are manually unrolled 4-wide
//     over that buffer, read the observed series in place through
//     std::span, and never allocate;
//   * per-offset work is exactly the two passes the aligned detector
//     does — nothing else.  No window copy, no obs emission, no
//     detector re-construction inside the loop.
//
// Bit-identity contract: score(), scan() and despread() perform the
// SAME floating-point operations in the SAME order as the naive
// per-offset reference (Detector::detect_with_scan_reference) and the
// historic multibit decoder loop.  The unrolling below keeps a single
// accumulator chain per statistic, so it reorders nothing.  We
// deliberately rejected a prefix-sum O(1)-per-offset formulation for
// the mean/denominator: differencing running sums reassociates the
// additions and breaks the bit-for-bit oracle test (and loses digits to
// cancellation on long series).  The measured win is in killing the
// per-offset copy/allocation, not the flops — see A-SCAN in
// EXPERIMENTS.md.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/status.h"
#include "watermark/pn_code.h"

namespace lexfor::watermark {

struct DetectionResult {
  double correlation = 0.0;  // normalized despread score in [-1, 1]
  double threshold = 0.0;    // decision threshold actually used
  bool detected = false;
};

struct ScanResult {
  DetectionResult best;
  std::size_t offset = 0;  // bin offset where the best despread occurred
};

class CorrelationKernel {
 public:
  // `threshold_sigmas`: decision threshold in units of the null-model
  // standard deviation 1/sqrt(N); see Detector.
  explicit CorrelationKernel(PnCode code, double threshold_sigmas = 5.0);

  // Aligned detection over the full code: mean-removed matched filter
  // on rates[0..length).  Short series are an error; extra bins are
  // ignored.  Allocation-free.
  [[nodiscard]] Result<DetectionResult> detect(
      std::span<const double> rates) const;

  // Alignment-free detection: slides the code over offsets
  // [0, min(max_offset, rates.size() - n)] and returns the best
  // despread under a Bonferroni-inflated threshold (+sqrt(2 ln k)
  // sigma for k offsets).  Ties keep the earliest offset.
  //
  // `code_begin`/`code_length` select a sub-range of the code to
  // despread against (the multibit decoder scores chips
  // [i·L, (i+1)·L) per bit); code_length 0 means the full code.
  [[nodiscard]] Result<ScanResult> scan(std::span<const double> rates,
                                        std::size_t max_offset,
                                        std::size_t code_begin = 0,
                                        std::size_t code_length = 0) const;

  // Segment despread primitive: the normalized, segment-mean-removed
  // correlation of x[0..len) against code chips
  // [code_begin, code_begin + len).  Returns 0.0 for a flat segment.
  // The caller guarantees code_begin + len <= length().
  [[nodiscard]] double despread(const double* x, std::size_t code_begin,
                                std::size_t len) const noexcept;

  // Same despread with a caller-supplied window sum.  The streaming path
  // (stream::OnlineDespreader) accumulates the sum incrementally as bins
  // arrive; adding elements in index order performs the same FP
  // additions in the same order as the internal sequential sum, so the
  // result is bit-identical to despread() on the same window.
  [[nodiscard]] double despread_presummed(const double* x,
                                          std::size_t code_begin,
                                          std::size_t len,
                                          double sum) const noexcept;

  // The Bonferroni-inflated decision threshold scan() applies when `k`
  // candidate offsets are tried over a despread window of
  // `code_length` chips (0 = the full code).  k = 1 reduces to the
  // aligned detect() threshold, bit for bit.  Exposed so the streaming
  // despreader applies the same formula through the same code path.
  [[nodiscard]] double scan_threshold(std::size_t k,
                                      std::size_t code_length = 0) const
      noexcept;

  // Normalized mean-removed cross-correlation of two equal-length series
  // (the Pearson coefficient): the passive flow-correlation baseline's
  // score, computed with the same sequential-order accumulation loops as
  // the despread above so the repo has exactly one scoring
  // implementation.  Bit-identical to the naive util::pearson loops
  // (retained as the test oracle).  Degenerate input — mismatched
  // lengths, fewer than two samples, zero variance — scores 0.0.
  [[nodiscard]] static double cross_score(std::span<const double> a,
                                          std::span<const double> b) noexcept;

  [[nodiscard]] const PnCode& code() const noexcept { return code_; }
  [[nodiscard]] std::size_t length() const noexcept {
    return chips_f64_.size();
  }
  [[nodiscard]] double threshold_sigmas() const noexcept {
    return threshold_sigmas_;
  }

 private:
  PnCode code_;
  std::vector<double> chips_f64_;  // code chips pre-converted to ±1.0
  double threshold_sigmas_;
};

}  // namespace lexfor::watermark
