// Sliding-window correlation kernel for DSSS watermark detection.
//
// The §IV.B traceback runs the matched filter against EVERY candidate
// flow an ISP vantage point observes, and alignment-free detection runs
// it at every candidate offset of every flow.  The original scan path
// copied the tail of the rate series into a fresh vector per offset and
// recomputed the statistics from scratch through the allocating
// Detector::detect — O(k·n) flops buried under O(k·tail) copies and k
// heap allocations.  CorrelationKernel is the allocation-free core both
// Detector and the batch fan-out (scan_batch.h) sit on:
//
//   * the PN code is pre-converted once into a contiguous ±1.0 double
//     buffer, so the despread loop is a straight-line dot product with
//     no int8→double conversion per element;
//   * the per-offset mean/correlate passes are manually unrolled 4-wide
//     over that buffer, read the observed series in place through
//     std::span, and never allocate;
//   * per-offset work is exactly the two passes the aligned detector
//     does — nothing else.  No window copy, no obs emission, no
//     detector re-construction inside the loop.
//
// Bit-identity contract: score(), scan() and despread() perform the
// SAME floating-point operations in the SAME order as the naive
// per-offset reference (Detector::detect_with_scan_reference) and the
// historic multibit decoder loop.  The unrolling below keeps a single
// accumulator chain per statistic, so it reorders nothing.  We
// deliberately rejected a prefix-sum O(1)-per-offset formulation for
// the mean/denominator: differencing running sums reassociates the
// additions and breaks the bit-for-bit oracle test (and loses digits to
// cancellation on long series).  The measured win is in killing the
// per-offset copy/allocation, not the flops — see A-SCAN in
// EXPERIMENTS.md.
//
// The SIMD lane (scan_simd / despread_simd, correlate_simd.cpp) is the
// one deliberate exception to that contract, and it is opt-in, never
// default.  It runs 4–8 independent accumulator chains per statistic
// (AVX2 4-lane registers × 4-deep unroll, multi-offset lane blocking in
// scan) over a 64-byte-aligned copy of the chip buffer, which
// REASSOCIATES the FP additions: scores differ from the scalar lane in
// the last bits.  Where PR 4 rejected prefix sums outright, the SIMD
// lane is instead gated the way reassociation can be gated — the scalar
// path stays the oracle, and the lane ships only under (1) verdict
// identity (same best offset, same detected flag, bit-identical
// threshold) and (2) a measured max-ULP distance on the correlation,
// bounded by kSimdMaxUlp (rationale in DESIGN §15; measured values in
// EXPERIMENTS A-SIMD, orders of magnitude under the bound).  Callers
// that need courtroom-reproducible bits — everything that feeds an
// evidentiary record — use the scalar lane; the SIMD lane exists for
// wire-speed triage over thousands of candidate flows.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/arena.h"
#include "util/status.h"
#include "watermark/pn_code.h"

namespace lexfor::watermark {

struct DetectionResult {
  double correlation = 0.0;  // normalized despread score in [-1, 1]
  double threshold = 0.0;    // decision threshold actually used
  bool detected = false;
};

struct ScanResult {
  DetectionResult best;
  std::size_t offset = 0;  // bin offset where the best despread occurred
};

// ULP distance between two finite doubles: how many representable
// values lie between them (0 = bit-identical).  The unit the SIMD
// lane's divergence from the scalar oracle is measured and gated in.
[[nodiscard]] std::uint64_t ulp_distance(double a, double b) noexcept;

class CorrelationKernel {
 public:
  // `threshold_sigmas`: decision threshold in units of the null-model
  // standard deviation 1/sqrt(N); see Detector.
  explicit CorrelationKernel(PnCode code, double threshold_sigmas = 5.0);

  // Copies rebuild the arena-backed aligned chip lane; moves are cheap
  // (the arena's chunks are pointer-stable, so chips_aligned_ survives).
  CorrelationKernel(const CorrelationKernel& other);
  CorrelationKernel& operator=(const CorrelationKernel& other);
  CorrelationKernel(CorrelationKernel&&) noexcept = default;
  CorrelationKernel& operator=(CorrelationKernel&&) noexcept = default;
  ~CorrelationKernel() = default;

  // Aligned detection over the full code: mean-removed matched filter
  // on rates[0..length).  Short series are an error; extra bins are
  // ignored.  Allocation-free.
  [[nodiscard]] Result<DetectionResult> detect(
      std::span<const double> rates) const;

  // Alignment-free detection: slides the code over offsets
  // [0, min(max_offset, rates.size() - n)] and returns the best
  // despread under a Bonferroni-inflated threshold (+sqrt(2 ln k)
  // sigma for k offsets).  Ties keep the earliest offset.
  //
  // `code_begin`/`code_length` select a sub-range of the code to
  // despread against (the multibit decoder scores chips
  // [i·L, (i+1)·L) per bit); code_length 0 means the full code.
  [[nodiscard]] Result<ScanResult> scan(std::span<const double> rates,
                                        std::size_t max_offset,
                                        std::size_t code_begin = 0,
                                        std::size_t code_length = 0) const;

  // The vectorized multi-accumulator scan lane: same arguments, same
  // threshold formula (scan_threshold through the same code path, so
  // the threshold is bit-identical), same earliest-offset tie-breaking
  // over ITS scores — but correlations are computed with 4–8
  // independent accumulator chains per offset and 4-offset lane
  // blocking, so they may differ from scan() by up to kSimdMaxUlp ULPs.
  // Falls back to the scalar scan when the lane is unavailable
  // (LEXFOR_SIMD=OFF build, or no AVX2/FMA at runtime), so callers may
  // call it unconditionally.  Opt-in only: see the header comment.
  [[nodiscard]] Result<ScanResult> scan_simd(std::span<const double> rates,
                                             std::size_t max_offset,
                                             std::size_t code_begin = 0,
                                             std::size_t code_length = 0) const;

  // Single-window SIMD despread (the scan_simd building block for tail
  // offsets and aligned detection).  Same caller contract as despread().
  [[nodiscard]] double despread_simd(const double* x, std::size_t code_begin,
                                     std::size_t len) const noexcept;

  // True when scan_simd actually runs vectorized on this build + host
  // (compile-time LEXFOR_SIMD option AND runtime CPU support); false
  // means scan_simd forwards to the scalar lane.
  [[nodiscard]] static bool simd_lane_available() noexcept;

  // Documented ceiling on the ULP distance between the SIMD and scalar
  // correlation for any single window.  Reassociating k chains over n
  // terms perturbs the despread numerator by O(eps·Σ|dᵢcᵢ|); divided by
  // the normalizer that is ~eps·√n/|corr| RELATIVE to the score, so the
  // ULP distance scales with 1/|corr| and √n — small scores cost ULPs
  // even though the absolute error stays ~1e-14.  2^26 (~1.5e-8
  // relative) covers degree-12 codes with scores down to ~1e-4 with two
  // orders of magnitude to spare; A-SIMD measures and reports the
  // actual maximum (typically < 2^20) and gates it against this bound.
  static constexpr std::uint64_t kSimdMaxUlp = std::uint64_t{1} << 26;

  // Segment despread primitive: the normalized, segment-mean-removed
  // correlation of x[0..len) against code chips
  // [code_begin, code_begin + len).  Returns 0.0 for a flat segment.
  // The caller guarantees code_begin + len <= length().
  [[nodiscard]] double despread(const double* x, std::size_t code_begin,
                                std::size_t len) const noexcept;

  // Same despread with a caller-supplied window sum.  The streaming path
  // (stream::OnlineDespreader) accumulates the sum incrementally as bins
  // arrive; adding elements in index order performs the same FP
  // additions in the same order as the internal sequential sum, so the
  // result is bit-identical to despread() on the same window.
  [[nodiscard]] double despread_presummed(const double* x,
                                          std::size_t code_begin,
                                          std::size_t len,
                                          double sum) const noexcept;

  // The Bonferroni-inflated decision threshold scan() applies when `k`
  // candidate offsets are tried over a despread window of
  // `code_length` chips (0 = the full code).  k = 1 reduces to the
  // aligned detect() threshold, bit for bit.  Exposed so the streaming
  // despreader applies the same formula through the same code path.
  [[nodiscard]] double scan_threshold(std::size_t k,
                                      std::size_t code_length = 0) const
      noexcept;

  // Normalized mean-removed cross-correlation of two equal-length series
  // (the Pearson coefficient): the passive flow-correlation baseline's
  // score, computed with the same sequential-order accumulation loops as
  // the despread above so the repo has exactly one scoring
  // implementation.  Bit-identical to the naive util::pearson loops
  // (retained as the test oracle).  Degenerate input — mismatched
  // lengths, fewer than two samples, zero variance — scores 0.0.
  [[nodiscard]] static double cross_score(std::span<const double> a,
                                          std::span<const double> b) noexcept;

  [[nodiscard]] const PnCode& code() const noexcept { return code_; }
  [[nodiscard]] std::size_t length() const noexcept {
    return chips_f64_.size();
  }
  [[nodiscard]] double threshold_sigmas() const noexcept {
    return threshold_sigmas_;
  }

 private:
  void build_aligned_lane();

  PnCode code_;
  std::vector<double> chips_f64_;  // code chips pre-converted to ±1.0
  double threshold_sigmas_;
  // 64-byte-aligned copy of chips_f64_ for the SIMD lane, carved from
  // the kernel's own arena via allocate_aligned so vector loads never
  // straddle a cache line.  The scalar lane keeps reading chips_f64_ —
  // its memory layout (and therefore its codegen) is untouched.
  util::Arena lane_arena_;
  double* chips_aligned_ = nullptr;
};

}  // namespace lexfor::watermark
