#include "watermark/pn_code.h"

#include <algorithm>

namespace lexfor::watermark {
namespace {

// Primitive-polynomial tap masks for Fibonacci LFSRs of degree 3..16.
// Index d-3 holds the XOR mask of feedback taps (bit i set = tap at
// stage i+1).  Each yields a maximal-length sequence of period 2^d - 1.
constexpr std::uint32_t kTapMask[] = {
    0b110,                // 3: x^3 + x^2 + 1
    0b1100,               // 4: x^4 + x^3 + 1
    0b10100,              // 5: x^5 + x^3 + 1
    0b110000,             // 6: x^6 + x^5 + 1
    0b1100000,            // 7: x^7 + x^6 + 1
    0b10111000,           // 8: x^8 + x^6 + x^5 + x^4 + 1
    0b100010000,          // 9: x^9 + x^5 + 1
    0b1001000000,         // 10: x^10 + x^7 + 1
    0b10100000000,        // 11: x^11 + x^9 + 1
    0b111000001000,       // 12: x^12 + x^11 + x^10 + x^4 + 1
    0b1110010000000,      // 13: x^13 + x^12 + x^11 + x^8 + 1
    0b11100000000010,     // 14: x^14 + x^13 + x^12 + x^2 + 1
    0b110000000000000,    // 15: x^15 + x^14 + 1
    0b1101000000001000,   // 16: x^16 + x^15 + x^13 + x^4 + 1
};

}  // namespace

Result<PnCode> PnCode::m_sequence(int degree, std::uint32_t seed) {
  if (degree < 3 || degree > 16) {
    return InvalidArgument("PnCode: degree must be in [3,16]");
  }
  const std::uint32_t mask = (1u << degree) - 1;
  std::uint32_t state = seed & mask;
  if (state == 0) {
    return InvalidArgument("PnCode: seed must be nonzero modulo 2^degree");
  }
  const std::uint32_t taps = kTapMask[degree - 3];
  const std::size_t period = (std::size_t{1} << degree) - 1;

  std::vector<std::int8_t> chips;
  chips.reserve(period);
  for (std::size_t i = 0; i < period; ++i) {
    const int out_bit = static_cast<int>(state & 1u);
    chips.push_back(out_bit ? std::int8_t{1} : std::int8_t{-1});
    // Galois right-shift update: the output bit folds the tap mask back
    // into the register, cycling through all 2^degree - 1 nonzero states.
    state >>= 1;
    if (out_bit != 0) state ^= taps;
  }
  return PnCode{std::move(chips)};
}

Result<PnCode> PnCode::from_chips(std::vector<std::int8_t> chips) {
  if (chips.empty()) return InvalidArgument("PnCode: empty chip vector");
  for (const auto c : chips) {
    if (c != 1 && c != -1) {
      return InvalidArgument("PnCode: chips must be +-1");
    }
  }
  return PnCode{std::move(chips)};
}

int PnCode::balance() const noexcept {
  int sum = 0;
  for (const auto c : chips_) sum += c;
  return sum;
}

double PnCode::autocorrelation(std::size_t shift) const noexcept {
  const std::size_t n = chips_.size();
  if (n == 0) return 0.0;
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += chips_[i] * chips_[(i + shift) % n];
  }
  return static_cast<double>(acc) / static_cast<double>(n);
}

double PnCode::cross_correlation(const PnCode& other) const noexcept {
  const std::size_t n = std::min(chips_.size(), other.chips_.size());
  if (n == 0) return 0.0;
  long acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += chips_[i] * other.chips_[i];
  return static_cast<double>(acc) / static_cast<double>(n);
}

}  // namespace lexfor::watermark
