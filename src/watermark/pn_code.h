// Pseudo-noise (PN) spreading codes.
//
// The traceback technique the paper analyzes in §IV.B ("Long PN Code
// Based DSSS Watermarking", Huang et al., INFOCOM'11) spreads a
// one-bit watermark over a long +-1 pseudo-noise sequence.  We generate
// maximal-length sequences (m-sequences) from Fibonacci LFSRs: length
// 2^n - 1, near-perfect balance, and two-valued autocorrelation — the
// properties that make the embedded mark invisible to a casual observer
// yet detectable by a matched filter.

#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace lexfor::watermark {

class PnCode {
 public:
  // Generates the m-sequence for LFSR degree `degree` (3..16 supported),
  // mapped to chips in {-1,+1}.  `seed` selects the starting phase; it
  // must be nonzero (mod 2^degree).
  static Result<PnCode> m_sequence(int degree, std::uint32_t seed = 1);

  // A code of explicit chips; used by tests and by code-composition
  // experiments.  Chips must be +-1.
  static Result<PnCode> from_chips(std::vector<std::int8_t> chips);

  [[nodiscard]] const std::vector<std::int8_t>& chips() const noexcept {
    return chips_;
  }
  [[nodiscard]] std::size_t length() const noexcept { return chips_.size(); }

  // Sum of chips; an m-sequence of length 2^n-1 has balance exactly -1
  // (one more -1 than +1) or +1 depending on mapping.
  [[nodiscard]] int balance() const noexcept;

  // Normalized circular autocorrelation at `shift`
  // (1/N * sum_i c[i]*c[(i+shift) mod N]).  For an m-sequence this is 1
  // at shift 0 and -1/N elsewhere.
  [[nodiscard]] double autocorrelation(std::size_t shift) const noexcept;

  // Normalized cross-correlation with another code of the same length.
  [[nodiscard]] double cross_correlation(const PnCode& other) const noexcept;

 private:
  explicit PnCode(std::vector<std::int8_t> chips) : chips_(std::move(chips)) {}
  std::vector<std::int8_t> chips_;
};

}  // namespace lexfor::watermark
