#include "watermark/scan_batch.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/obs.h"

namespace lexfor::watermark {
namespace {

Result<ScanResult> run_job(const ScanJob& job, bool batch_simd) {
  if (job.kernel == nullptr) {
    return InvalidArgument("scan batch: job has no kernel");
  }
  if (batch_simd || job.use_simd) {
    return job.kernel->scan_simd(job.rates, job.max_offset, job.code_begin,
                                 job.code_length);
  }
  return job.kernel->scan(job.rates, job.max_offset, job.code_begin,
                          job.code_length);
}

// Offsets the scan for `job` will evaluate; 0 when the job errors out
// before scanning.
[[maybe_unused]] std::size_t offsets_evaluated(const ScanJob& job) {
  if (job.kernel == nullptr) return 0;
  const std::size_t n = job.code_length == 0 ? job.kernel->length()
                                             : job.code_length;
  if (n == 0 || job.rates.size() < n) return 0;
  return std::min(job.max_offset, job.rates.size() - n) + 1;
}

}  // namespace

ScanBatch::ScanBatch(ScanBatchOptions options) : options_(options) {}

util::ThreadPool& ScanBatch::pool() const {
  std::call_once(pool_once_, [this] {
    // Workers pre-register their obs ring shard (see legal::BatchEvaluator).
    pool_ = std::make_unique<util::ThreadPool>(
        options_.threads, [] { LEXFOR_OBS_WARM_THREAD(); });
    pool_->set_queue_observer([](std::size_t depth) {
      LEXFOR_OBS_GAUGE_SET("watermark.scan.pool_queue_depth",
                           static_cast<std::int64_t>(depth));
    });
  });
  return *pool_;
}

std::vector<Result<ScanResult>> ScanBatch::run(
    std::span<const ScanJob> jobs) const {
  std::vector<Result<ScanResult>> out(
      jobs.size(), Result<ScanResult>(Internal("scan job not executed")));
  if (jobs.empty()) return out;

  LEXFOR_OBS_SPAN(obs::Level::kInfo, "watermark", "scan_batch",
                  "jobs=" + std::to_string(jobs.size()), obs::no_sim_time());
  LEXFOR_OBS_COUNTER_ADD("watermark.scan.batches", 1);
  LEXFOR_OBS_COUNTER_ADD("watermark.scan.flows", jobs.size());

  util::ThreadPool& workers = pool();
  // Jobs are coarse (a whole offset scan each), so fan out one job per
  // chunk; the pool's FIFO keeps stragglers rebalanced.
  workers.parallel_for(jobs.size(), 1, [&](std::size_t begin,
                                           std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
#if LEXFOR_OBS
      const auto start = std::chrono::steady_clock::now();
#endif
      out[i] = run_job(jobs[i], options_.use_simd);
#if LEXFOR_OBS
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start);
      LEXFOR_OBS_HISTOGRAM_RECORD("watermark.scan.latency_us",
                                  elapsed.count());
      LEXFOR_OBS_COUNTER_ADD("watermark.scan.offsets",
                             offsets_evaluated(jobs[i]));
#endif
    }
  });
  return out;
}

}  // namespace lexfor::watermark
