#include "watermark/correlate.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "obs/obs.h"

namespace lexfor::watermark {
namespace {

// Sequential sum, unrolled 4-wide over a SINGLE accumulator chain: the
// adds happen in exactly the order `for (i) s += x[i]` performs them,
// so the result is bit-identical to the naive loop (the compiler may
// not reassociate FP additions without -ffast-math).  The unrolling
// buys address-computation and loop-control savings, not reordering.
inline double seq_sum(const double* x, std::size_t n) noexcept {
  double s = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s += x[i];
    s += x[i + 1];
    s += x[i + 2];
    s += x[i + 3];
  }
  for (; i < n; ++i) s += x[i];
  return s;
}

// Fused mean-removed correlate pass: num and denom are independent
// accumulator chains, each in naive sequential order.
inline void seq_correlate(const double* x, const double* c, std::size_t n,
                          double mean, double& num_out,
                          double& denom_out) noexcept {
  double num = 0.0, denom = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i] - mean;
    num += d0 * c[i];
    denom += d0 * d0;
    const double d1 = x[i + 1] - mean;
    num += d1 * c[i + 1];
    denom += d1 * d1;
    const double d2 = x[i + 2] - mean;
    num += d2 * c[i + 2];
    denom += d2 * d2;
    const double d3 = x[i + 3] - mean;
    num += d3 * c[i + 3];
    denom += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = x[i] - mean;
    num += d * c[i];
    denom += d * d;
  }
  num_out = num;
  denom_out = denom;
}

// Fused Pearson pass: cov/va/vb are three independent accumulator
// chains, each advancing in naive sequential order — bit-identical to
// the util::pearson reference loop.
inline void seq_cross(const double* a, const double* b, std::size_t n,
                      double ma, double mb, double& cov_out, double& va_out,
                      double& vb_out) noexcept {
  double cov = 0.0, va = 0.0, vb = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double da0 = a[i] - ma;
    const double db0 = b[i] - mb;
    cov += da0 * db0;
    va += da0 * da0;
    vb += db0 * db0;
    const double da1 = a[i + 1] - ma;
    const double db1 = b[i + 1] - mb;
    cov += da1 * db1;
    va += da1 * da1;
    vb += db1 * db1;
    const double da2 = a[i + 2] - ma;
    const double db2 = b[i + 2] - mb;
    cov += da2 * db2;
    va += da2 * da2;
    vb += db2 * db2;
    const double da3 = a[i + 3] - ma;
    const double db3 = b[i + 3] - mb;
    cov += da3 * db3;
    va += da3 * da3;
    vb += db3 * db3;
  }
  for (; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  cov_out = cov;
  va_out = va;
  vb_out = vb;
}

}  // namespace

CorrelationKernel::CorrelationKernel(PnCode code, double threshold_sigmas)
    : code_(std::move(code)), threshold_sigmas_(threshold_sigmas) {
  chips_f64_.reserve(code_.length());
  for (const auto chip : code_.chips()) {
    chips_f64_.push_back(static_cast<double>(chip));
  }
  build_aligned_lane();
}

CorrelationKernel::CorrelationKernel(const CorrelationKernel& other)
    : code_(other.code_),
      chips_f64_(other.chips_f64_),
      threshold_sigmas_(other.threshold_sigmas_) {
  build_aligned_lane();
}

CorrelationKernel& CorrelationKernel::operator=(const CorrelationKernel& other) {
  if (this == &other) return *this;
  code_ = other.code_;
  chips_f64_ = other.chips_f64_;
  threshold_sigmas_ = other.threshold_sigmas_;
  lane_arena_.reset();
  build_aligned_lane();
  return *this;
}

void CorrelationKernel::build_aligned_lane() {
  chips_aligned_ = lane_arena_.alloc_array_aligned<double>(
      chips_f64_.size(), /*align=*/64);
  std::copy(chips_f64_.begin(), chips_f64_.end(), chips_aligned_);
}

std::uint64_t ulp_distance(double a, double b) noexcept {
  // Map doubles onto a monotone integer line (sign-magnitude → offset
  // binary), then the ULP distance is plain integer distance.  ±0
  // coincide; NaN/inf inputs are the caller's bug.
  const auto key = [](double v) {
    auto bits = std::bit_cast<std::uint64_t>(v);
    const std::uint64_t sign = std::uint64_t{1} << 63;
    return (bits & sign) ? sign - (bits & ~sign) : sign + bits;
  };
  const std::uint64_t ka = key(a), kb = key(b);
  return ka > kb ? ka - kb : kb - ka;
}

double CorrelationKernel::despread(const double* x, std::size_t code_begin,
                                   std::size_t len) const noexcept {
  return despread_presummed(x, code_begin, len, seq_sum(x, len));
}

double CorrelationKernel::despread_presummed(const double* x,
                                             std::size_t code_begin,
                                             std::size_t len,
                                             double sum) const noexcept {
  const double mean = sum / static_cast<double>(len);
  double num = 0.0, denom = 0.0;
  seq_correlate(x, chips_f64_.data() + code_begin, len, mean, num, denom);
  if (denom <= 0.0) return 0.0;  // a flat window carries no mark
  return num / std::sqrt(denom * static_cast<double>(len));
}

double CorrelationKernel::scan_threshold(std::size_t k,
                                         std::size_t code_length) const
    noexcept {
  const std::size_t n = code_length == 0 ? chips_f64_.size() : code_length;
  const double kf = static_cast<double>(k);
  const double sigma_inflation = std::sqrt(2.0 * std::log(std::max(kf, 1.0)));
  return (threshold_sigmas_ + sigma_inflation) /
         std::sqrt(static_cast<double>(n));
}

double CorrelationKernel::cross_score(std::span<const double> a,
                                      std::span<const double> b) noexcept {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const std::size_t len = a.size();
  const double n = static_cast<double>(len);
  const double ma = seq_sum(a.data(), len) / n;
  const double mb = seq_sum(b.data(), len) / n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  seq_cross(a.data(), b.data(), len, ma, mb, cov, va, vb);
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

Result<DetectionResult> CorrelationKernel::detect(
    std::span<const double> rates) const {
  const std::size_t n = chips_f64_.size();
  if (rates.size() < n) {
    return InvalidArgument(
        "detect: observed series shorter than the PN code (" +
        std::to_string(rates.size()) + " < " + std::to_string(n) + ")");
  }
  DetectionResult r;
  r.threshold = threshold_sigmas_ / std::sqrt(static_cast<double>(n));
  r.correlation = despread(rates.data(), 0, n);
  r.detected = r.correlation > r.threshold;
  return r;
}

Result<ScanResult> CorrelationKernel::scan(std::span<const double> rates,
                                           std::size_t max_offset,
                                           std::size_t code_begin,
                                           std::size_t code_length) const {
  const std::size_t n = code_length == 0 ? chips_f64_.size() : code_length;
  if (code_begin + n > chips_f64_.size()) {
    return InvalidArgument("scan: code segment [" +
                           std::to_string(code_begin) + ", " +
                           std::to_string(code_begin + n) +
                           ") exceeds the code length " +
                           std::to_string(chips_f64_.size()));
  }
  if (rates.size() < n) {
    return InvalidArgument("detect_with_scan: series shorter than the code");
  }
  const std::size_t last_offset = std::min(max_offset, rates.size() - n);

  LEXFOR_OBS_PROFILE("watermark.kernel.scan");

  // Bonferroni correction, identical to the naive reference: scanning k
  // offsets multiplies the null false-positive probability by ~k, so
  // inflate the threshold by sqrt(2 ln k) sigma.
  const double threshold = scan_threshold(last_offset + 1, n);

  ScanResult best;
  best.best.correlation = -2.0;  // below any achievable value
  best.best.threshold = threshold;
  const double* x = rates.data();
  for (std::size_t off = 0; off <= last_offset; ++off) {
    const double corr = despread(x + off, code_begin, n);
    if (corr > best.best.correlation) {
      best.best.correlation = corr;
      best.offset = off;
    }
  }
  best.best.detected = best.best.correlation > threshold;
  return best;
}

}  // namespace lexfor::watermark
