// The vectorized despread lane: multi-accumulator, multi-offset-blocked
// scan (CorrelationKernel::scan_simd / despread_simd).
//
// Why the scalar lane is slow: seq_correlate keeps ONE accumulator
// chain per statistic, so every element's add depends on the previous
// one — the loop is bound by FP-add latency (~4 cycles), not by FMA
// throughput (~0.5 cycles).  That single-chain discipline is exactly
// what buys the scalar lane its bit-identity contract, so it stays; the
// SIMD lane trades the contract for the hardware:
//
//   * 4-offset lane blocking (AVX2): offsets off..off+3 are scored
//     together.  Window element i of lane k is x[off + k + i], so ONE
//     unaligned 32-byte load at x + off + i feeds all four lanes — the
//     overlapping windows that make the naive scan O(k·n) are what make
//     the blocked scan nearly free of extra memory traffic (the loads
//     hit L1, shifted by one element per lane).
//   * 4-deep unroll per statistic: accumulator registers j = i mod 4
//     give 4 independent vector chains (= 4 chains per offset for the
//     blocked scan, 16 scalar chains for the single-window despread),
//     enough to cover the FMA latency×throughput product on any recent
//     x86.  The chip factor is a broadcast from the kernel's 64-byte-
//     aligned chip lane (util::Arena::allocate_aligned), so the only
//     unaligned traffic is the rate series itself.
//   * reduction order is FIXED (chain 0+1, 2+3, then pairwise; lane 0
//     through 3 in order): the lane is deterministic for a given build
//     and host — it differs from the scalar oracle, but never from
//     itself.  Tests and A-SIMD pin verdict identity against the scalar
//     lane and bound the correlation's ULP distance by kSimdMaxUlp.
//
// Compile-time gate: the file is always built, but the vector body is
// compiled only when the build sets LEXFOR_SIMD (CMake option) AND the
// translation unit has AVX2+FMA available (CMake adds -mavx2 -mfma to
// this file alone when the compiler supports them — the rest of the
// codebase keeps the portable baseline ISA).  Runtime gate:
// __builtin_cpu_supports, checked once; without it scan_simd forwards
// to the scalar scan, so a binary built here still runs anywhere.

#include "watermark/correlate.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

#if defined(LEXFOR_SIMD) && defined(__AVX2__) && defined(__FMA__)
#define LEXFOR_SIMD_AVX2 1
#include <immintrin.h>
#else
#define LEXFOR_SIMD_AVX2 0
#endif

namespace lexfor::watermark {
namespace {

#if LEXFOR_SIMD_AVX2

bool runtime_cpu_ok() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

// Horizontal sum of one __m256d in fixed lane order 0..3 (determinism
// within the lane, not identity with the scalar chain).
inline double hsum_ordered(__m256d v) noexcept {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

// Scores FOUR consecutive offsets in one sweep: out[k] is the
// normalized mean-removed despread of x[off+k .. off+k+n) against
// chips[0..n), for k = 0..3, where x already points at offset `off`.
inline void despread4_avx2(const double* x, const double* chips,
                           std::size_t n, double out[4]) noexcept {
  const __m256d zero = _mm256_setzero_pd();

  // Pass 1 — window sums.  Lane k of loadu(x + i) is x[i + k], so the
  // accumulators build the four shifted window sums simultaneously;
  // 4 chains (j = i mod 4) break the add-latency dependency.
  __m256d s0 = zero, s1 = zero, s2 = zero, s3 = zero;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 = _mm256_add_pd(s0, _mm256_loadu_pd(x + i));
    s1 = _mm256_add_pd(s1, _mm256_loadu_pd(x + i + 1));
    s2 = _mm256_add_pd(s2, _mm256_loadu_pd(x + i + 2));
    s3 = _mm256_add_pd(s3, _mm256_loadu_pd(x + i + 3));
  }
  __m256d sum = _mm256_add_pd(_mm256_add_pd(s0, s1), _mm256_add_pd(s2, s3));
  for (; i < n; ++i) sum = _mm256_add_pd(sum, _mm256_loadu_pd(x + i));

  const __m256d n_v = _mm256_set1_pd(static_cast<double>(n));
  const __m256d mean = _mm256_div_pd(sum, n_v);

  // Pass 2 — fused mean-removed correlate: num/denom, 4 chains each.
  __m256d num0 = zero, num1 = zero, num2 = zero, num3 = zero;
  __m256d den0 = zero, den1 = zero, den2 = zero, den3 = zero;
  i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d c0 = _mm256_broadcast_sd(chips + i);
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(x + i), mean);
    num0 = _mm256_fmadd_pd(d0, c0, num0);
    den0 = _mm256_fmadd_pd(d0, d0, den0);
    const __m256d c1 = _mm256_broadcast_sd(chips + i + 1);
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 1), mean);
    num1 = _mm256_fmadd_pd(d1, c1, num1);
    den1 = _mm256_fmadd_pd(d1, d1, den1);
    const __m256d c2 = _mm256_broadcast_sd(chips + i + 2);
    const __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 2), mean);
    num2 = _mm256_fmadd_pd(d2, c2, num2);
    den2 = _mm256_fmadd_pd(d2, d2, den2);
    const __m256d c3 = _mm256_broadcast_sd(chips + i + 3);
    const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 3), mean);
    num3 = _mm256_fmadd_pd(d3, c3, num3);
    den3 = _mm256_fmadd_pd(d3, d3, den3);
  }
  __m256d num =
      _mm256_add_pd(_mm256_add_pd(num0, num1), _mm256_add_pd(num2, num3));
  __m256d den =
      _mm256_add_pd(_mm256_add_pd(den0, den1), _mm256_add_pd(den2, den3));
  for (; i < n; ++i) {
    const __m256d c = _mm256_broadcast_sd(chips + i);
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), mean);
    num = _mm256_fmadd_pd(d, c, num);
    den = _mm256_fmadd_pd(d, d, den);
  }

  // corr = num / sqrt(den·n); a flat window (den <= 0) scores 0, same
  // boundary the scalar lane applies.  sqrt of a negative lane yields
  // NaN, which the mask then zeroes.
  const __m256d corr =
      _mm256_div_pd(num, _mm256_sqrt_pd(_mm256_mul_pd(den, n_v)));
  const __m256d keep = _mm256_cmp_pd(den, zero, _CMP_GT_OQ);
  _mm256_storeu_pd(out, _mm256_and_pd(corr, keep));
}

// Single-window despread, vectorized across the window: 4 vector
// chains = 16 scalar chains per statistic, reduced in fixed order.
inline double despread1_avx2(const double* x, const double* chips,
                             std::size_t n) noexcept {
  const __m256d zero = _mm256_setzero_pd();
  __m256d s0 = zero, s1 = zero, s2 = zero, s3 = zero;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s0 = _mm256_add_pd(s0, _mm256_loadu_pd(x + i));
    s1 = _mm256_add_pd(s1, _mm256_loadu_pd(x + i + 4));
    s2 = _mm256_add_pd(s2, _mm256_loadu_pd(x + i + 8));
    s3 = _mm256_add_pd(s3, _mm256_loadu_pd(x + i + 12));
  }
  __m256d sum_v = _mm256_add_pd(_mm256_add_pd(s0, s1), _mm256_add_pd(s2, s3));
  for (; i + 4 <= n; i += 4) {
    sum_v = _mm256_add_pd(sum_v, _mm256_loadu_pd(x + i));
  }
  double sum = hsum_ordered(sum_v);
  for (; i < n; ++i) sum += x[i];
  const double mean = sum / static_cast<double>(n);

  const __m256d mean_v = _mm256_set1_pd(mean);
  __m256d num0 = zero, num1 = zero, num2 = zero, num3 = zero;
  __m256d den0 = zero, den1 = zero, den2 = zero, den3 = zero;
  i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(x + i), mean_v);
    num0 = _mm256_fmadd_pd(d0, _mm256_loadu_pd(chips + i), num0);
    den0 = _mm256_fmadd_pd(d0, d0, den0);
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 4), mean_v);
    num1 = _mm256_fmadd_pd(d1, _mm256_loadu_pd(chips + i + 4), num1);
    den1 = _mm256_fmadd_pd(d1, d1, den1);
    const __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 8), mean_v);
    num2 = _mm256_fmadd_pd(d2, _mm256_loadu_pd(chips + i + 8), num2);
    den2 = _mm256_fmadd_pd(d2, d2, den2);
    const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 12), mean_v);
    num3 = _mm256_fmadd_pd(d3, _mm256_loadu_pd(chips + i + 12), num3);
    den3 = _mm256_fmadd_pd(d3, d3, den3);
  }
  __m256d num_v =
      _mm256_add_pd(_mm256_add_pd(num0, num1), _mm256_add_pd(num2, num3));
  __m256d den_v =
      _mm256_add_pd(_mm256_add_pd(den0, den1), _mm256_add_pd(den2, den3));
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), mean_v);
    num_v = _mm256_fmadd_pd(d, _mm256_loadu_pd(chips + i), num_v);
    den_v = _mm256_fmadd_pd(d, d, den_v);
  }
  double num = hsum_ordered(num_v);
  double den = hsum_ordered(den_v);
  for (; i < n; ++i) {
    const double d = x[i] - mean;
    num += d * chips[i];
    den += d * d;
  }
  if (den <= 0.0) return 0.0;
  return num / std::sqrt(den * static_cast<double>(n));
}

#endif  // LEXFOR_SIMD_AVX2

}  // namespace

bool CorrelationKernel::simd_lane_available() noexcept {
#if LEXFOR_SIMD_AVX2
  return runtime_cpu_ok();
#else
  return false;
#endif
}

double CorrelationKernel::despread_simd(const double* x,
                                        std::size_t code_begin,
                                        std::size_t len) const noexcept {
#if LEXFOR_SIMD_AVX2
  if (runtime_cpu_ok()) {
    // chips_aligned_ is 64-byte aligned; code_begin (multibit segments)
    // may start mid-cache-line, so chip loads use loadu instructions —
    // free on aligned addresses, correct on segment starts.  Never
    // despread4 here: its shifted loads read up to 3 doubles past a
    // single window.
    return despread1_avx2(x, chips_aligned_ + code_begin, len);
  }
#endif
  return despread(x, code_begin, len);
}

Result<ScanResult> CorrelationKernel::scan_simd(std::span<const double> rates,
                                                std::size_t max_offset,
                                                std::size_t code_begin,
                                                std::size_t code_length) const {
#if LEXFOR_SIMD_AVX2
  if (!runtime_cpu_ok()) return scan(rates, max_offset, code_begin, code_length);
  const std::size_t n = code_length == 0 ? chips_f64_.size() : code_length;
  if (code_begin + n > chips_f64_.size()) {
    return InvalidArgument("scan: code segment [" +
                           std::to_string(code_begin) + ", " +
                           std::to_string(code_begin + n) +
                           ") exceeds the code length " +
                           std::to_string(chips_f64_.size()));
  }
  if (rates.size() < n) {
    return InvalidArgument("detect_with_scan: series shorter than the code");
  }
  const std::size_t last_offset = std::min(max_offset, rates.size() - n);

  LEXFOR_OBS_PROFILE("watermark.kernel.scan_simd");

  // Identical threshold through the identical code path: the SIMD lane
  // reassociates scores, never the decision rule.
  const double threshold = scan_threshold(last_offset + 1, n);

  ScanResult best;
  best.best.correlation = -2.0;
  best.best.threshold = threshold;
  const double* x = rates.data();
  const double* chips = chips_aligned_ + code_begin;
  std::size_t off = 0;
  double lane[4];
  for (; off + 4 <= last_offset + 1; off += 4) {
    despread4_avx2(x + off, chips, n, lane);
    for (std::size_t k = 0; k < 4; ++k) {
      if (lane[k] > best.best.correlation) {  // strict >: earliest offset wins
        best.best.correlation = lane[k];
        best.offset = off + k;
      }
    }
  }
  for (; off <= last_offset; ++off) {
    const double corr = despread_simd(x + off, code_begin, n);
    if (corr > best.best.correlation) {
      best.best.correlation = corr;
      best.offset = off;
    }
  }
  best.best.detected = best.best.correlation > threshold;
  return best;
#else
  return scan(rates, max_offset, code_begin, code_length);
#endif
}

}  // namespace lexfor::watermark
