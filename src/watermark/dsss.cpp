#include "watermark/dsss.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace lexfor::watermark {

Result<DetectionResult> Detector::detect(
    const std::vector<double>& chip_rates) const {
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "watermark", "detect",
                  "chips=" + std::to_string(code_.length()),
                  obs::no_sim_time());
#if LEXFOR_OBS
  const std::uint64_t correlate_start = obs::tracer().wall_now_ns();
#endif
  const std::size_t n = code_.length();
  if (chip_rates.size() < n) {
    return InvalidArgument(
        "detect: observed series shorter than the PN code (" +
        std::to_string(chip_rates.size()) + " < " + std::to_string(n) + ")");
  }

  // Remove the mean over the code window, then despread.
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += chip_rates[i];
  mean /= static_cast<double>(n);

  double num = 0.0, denom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = chip_rates[i] - mean;
    num += x * static_cast<double>(code_.chips()[i]);
    denom += x * x;
  }

  DetectionResult r;
  r.threshold = threshold_sigmas_ / std::sqrt(static_cast<double>(n));
  if (denom <= 0.0) {
    // A perfectly flat series carries no mark.
    r.correlation = 0.0;
    r.detected = false;
    return r;
  }
  // Normalized correlation: for an unmarked series of i.i.d. noise this
  // is ~N(0, 1/N); for a marked series it concentrates near
  // depth-dependent positive values.
  r.correlation = num / std::sqrt(denom * static_cast<double>(n));
  r.detected = r.correlation > r.threshold;
#if LEXFOR_OBS
  // Correlation cost scales with code length; the histogram is the
  // before/after evidence for any detector optimisation.
  LEXFOR_OBS_HISTOGRAM_RECORD(
      "watermark.correlate_ns",
      static_cast<std::int64_t>(obs::tracer().wall_now_ns() -
                                correlate_start));
  LEXFOR_OBS_COUNTER_ADD("watermark.detections_run", 1);
  if (r.detected) LEXFOR_OBS_COUNTER_ADD("watermark.detections_positive", 1);
#endif
  return r;
}

Result<Detector::ScanResult> Detector::detect_with_scan(
    const std::vector<double>& rates, std::size_t max_offset) const {
  const std::size_t n = code_.length();
  if (rates.size() < n) {
    return InvalidArgument("detect_with_scan: series shorter than the code");
  }
  const std::size_t last_offset =
      std::min(max_offset, rates.size() - n);

  // Bonferroni correction: scanning k offsets multiplies the null
  // false-positive probability by ~k; raise the threshold accordingly.
  // For a Gaussian tail, adding ln(k)/sqrt(2) sigma is a simple, safe
  // inflation at the scales used here.
  const double k = static_cast<double>(last_offset + 1);
  const double sigma_inflation = std::sqrt(2.0 * std::log(std::max(k, 1.0)));
  const Detector adjusted(code_, threshold_sigmas_ + sigma_inflation);

  ScanResult best;
  best.best.correlation = -2.0;  // below any achievable value
  for (std::size_t off = 0; off <= last_offset; ++off) {
    const std::vector<double> window(rates.begin() + static_cast<std::ptrdiff_t>(off),
                                     rates.end());
    auto r = adjusted.detect(window);
    if (!r.ok()) return r.status();
    if (r.value().correlation > best.best.correlation) {
      best.best = r.value();
      best.offset = off;
    }
  }
  return best;
}

Result<DetectionResult> Detector::detect_counts(
    const std::vector<std::uint32_t>& chip_counts) const {
  std::vector<double> rates;
  rates.reserve(chip_counts.size());
  for (const auto c : chip_counts) rates.push_back(static_cast<double>(c));
  return detect(rates);
}

}  // namespace lexfor::watermark
