#include "watermark/dsss.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/obs.h"

namespace lexfor::watermark {

Result<DetectionResult> Detector::detect(
    std::span<const double> chip_rates) const {
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "watermark", "detect",
                  "chips=" + std::to_string(code().length()),
                  obs::no_sim_time());
#if LEXFOR_OBS
  const std::uint64_t correlate_start = obs::tracer().wall_now_ns();
#endif
  auto r = kernel_.detect(chip_rates);
#if LEXFOR_OBS
  if (r.ok()) {
    // Correlation cost scales with code length; the histogram is the
    // before/after evidence for any detector optimisation.
    LEXFOR_OBS_HISTOGRAM_RECORD(
        "watermark.correlate_ns",
        static_cast<std::int64_t>(obs::tracer().wall_now_ns() -
                                  correlate_start));
    LEXFOR_OBS_COUNTER_ADD("watermark.detections_run", 1);
    if (r.value().detected) {
      LEXFOR_OBS_COUNTER_ADD("watermark.detections_positive", 1);
    }
  }
#endif
  return r;
}

Result<Detector::ScanResult> Detector::detect_with_scan(
    std::span<const double> rates, std::size_t max_offset) const {
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "watermark", "detect_with_scan",
                  "chips=" + std::to_string(code().length()) +
                      ",max_offset=" + std::to_string(max_offset),
                  obs::no_sim_time());
  return kernel_.scan(rates, max_offset);
}

Result<Detector::ScanResult> Detector::detect_with_scan(
    std::span<const double> rates, const DetectConfig& config) const {
  if (!config.use_simd) return detect_with_scan(rates, config.max_offset);
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "watermark", "detect_with_scan_simd",
                  "chips=" + std::to_string(code().length()) +
                      ",max_offset=" + std::to_string(config.max_offset),
                  obs::no_sim_time());
  return kernel_.scan_simd(rates, config.max_offset);
}

Result<Detector::ScanResult> Detector::detect_with_scan_reference(
    std::span<const double> rates, std::size_t max_offset) const {
  const std::size_t n = code().length();
  if (rates.size() < n) {
    return InvalidArgument("detect_with_scan: series shorter than the code");
  }
  const std::size_t last_offset = std::min(max_offset, rates.size() - n);

  // Bonferroni correction: scanning k offsets multiplies the null
  // false-positive probability by ~k; raise the threshold accordingly.
  // For a Gaussian tail, adding ln(k)/sqrt(2) sigma is a simple, safe
  // inflation at the scales used here.
  const double k = static_cast<double>(last_offset + 1);
  const double sigma_inflation = std::sqrt(2.0 * std::log(std::max(k, 1.0)));
  const double adjusted_sigmas = kernel_.threshold_sigmas() + sigma_inflation;
  const auto& chips = code().chips();

  ScanResult best;
  best.best.correlation = -2.0;  // below any achievable value
  for (std::size_t off = 0; off <= last_offset; ++off) {
    // Naive from-scratch despread of a copied window, kept deliberately
    // independent of CorrelationKernel so the bit-identity property
    // test compares two implementations, not one with itself.  (The
    // historic version copied the whole tail of the series here even
    // though only n bins are read — the one fix this oracle got.)
    const std::vector<double> window(
        rates.begin() + static_cast<std::ptrdiff_t>(off),
        rates.begin() + static_cast<std::ptrdiff_t>(off + n));
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += window[i];
    mean /= static_cast<double>(n);

    double num = 0.0, denom = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = window[i] - mean;
      num += x * static_cast<double>(chips[i]);
      denom += x * x;
    }

    DetectionResult r;
    r.threshold = adjusted_sigmas / std::sqrt(static_cast<double>(n));
    if (denom <= 0.0) {
      r.correlation = 0.0;  // a perfectly flat window carries no mark
    } else {
      r.correlation = num / std::sqrt(denom * static_cast<double>(n));
    }
    r.detected = r.correlation > r.threshold;
    if (r.correlation > best.best.correlation) {
      best.best = r;
      best.offset = off;
    }
  }
  return best;
}

Result<DetectionResult> Detector::detect_counts(
    const std::vector<std::uint32_t>& chip_counts) const {
  std::vector<double> scratch;
  return detect_counts(chip_counts, scratch);
}

Result<DetectionResult> Detector::detect_counts(
    const std::vector<std::uint32_t>& chip_counts,
    std::vector<double>& scratch) const {
  scratch.clear();
  scratch.reserve(chip_counts.size());
  for (const auto c : chip_counts) scratch.push_back(static_cast<double>(c));
  return detect(scratch);
}

}  // namespace lexfor::watermark
