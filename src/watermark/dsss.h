// DSSS traffic watermarking: embedder and matched-filter detector.
//
// §IV.B of the paper: "By slightly modifying the traffic rate with an
// embedded PN code at the seized web-server and collecting the traffic
// rate at the suspect's ISP (they do not need to collect the entire
// packet, so they do not need a wiretap warrant), they can identify the
// suspect in the anonymous network system."
//
// The embedder turns a PN code into a rate-multiplier function (1 + d
// during a +1 chip, 1 - d during a -1 chip).  The detector bins the far
// side's packet arrivals into chip-width windows, removes the mean, and
// correlates against the code; the normalized score is compared against
// a threshold calibrated to the code length.  The correlation math
// itself lives in CorrelationKernel (correlate.h); Detector is the
// instrumented, Result-returning front end.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/sim_time.h"
#include "watermark/correlate.h"
#include "watermark/pn_code.h"

namespace lexfor::watermark {

struct EmbedParams {
  SimTime start;                 // when chip 0 begins
  SimDuration chip_duration = SimDuration::from_ms(500.0);
  double depth = 0.3;            // fractional rate modulation amplitude
};

// Produces the instantaneous rate multiplier for a FlowSource.
class Embedder {
 public:
  Embedder(PnCode code, EmbedParams params)
      : code_(std::move(code)), params_(params) {}

  // 1 +- depth during the code window, exactly 1.0 outside it.
  [[nodiscard]] double multiplier(SimTime now) const noexcept {
    if (now < params_.start) return 1.0;
    const std::int64_t elapsed = now.us - params_.start.us;
    const auto chip_idx =
        static_cast<std::size_t>(elapsed / params_.chip_duration.us);
    if (chip_idx >= code_.length()) return 1.0;
    return 1.0 + params_.depth * static_cast<double>(code_.chips()[chip_idx]);
  }

  [[nodiscard]] SimTime end() const noexcept {
    return params_.start +
           params_.chip_duration * static_cast<std::int64_t>(code_.length());
  }
  [[nodiscard]] const PnCode& code() const noexcept { return code_; }
  [[nodiscard]] const EmbedParams& params() const noexcept { return params_; }

 private:
  PnCode code_;
  EmbedParams params_;
};

// Matched-filter detector.
class Detector {
 public:
  // `threshold_sigmas`: decision threshold in units of the null-model
  // standard deviation 1/sqrt(N) (N = code length).  5 sigma keeps the
  // false-positive rate negligible for the code lengths used here.
  explicit Detector(PnCode code, double threshold_sigmas = 5.0)
      : kernel_(std::move(code), threshold_sigmas) {}

  // `chip_rates` holds the observed traffic rate per chip window, aligned
  // with chip 0 (the investigator controls the embed start, §IV.B).
  // Extra trailing bins are ignored; short series are an error.  The
  // series is read in place — no copy, no allocation.
  [[nodiscard]] Result<DetectionResult> detect(
      std::span<const double> chip_rates) const;

  // Convenience: converts binned packet counts to rates and detects.
  // The first form allocates a fresh conversion buffer per call; the
  // second reuses `scratch` (cleared and refilled), which is what hot
  // per-flow loops (tornet::Traceback) use.
  [[nodiscard]] Result<DetectionResult> detect_counts(
      const std::vector<std::uint32_t>& chip_counts) const;
  [[nodiscard]] Result<DetectionResult> detect_counts(
      const std::vector<std::uint32_t>& chip_counts,
      std::vector<double>& scratch) const;

  // Alignment-free detection: when the observer does not know the embed
  // start (no cooperation from the marking side), slide the code over
  // offsets [0, max_offset] and return the best despread.  The threshold
  // is Bonferroni-adjusted for the number of offsets tried so scanning
  // does not inflate the false-positive rate.  Thin wrapper over
  // CorrelationKernel::scan — bit-identical scores to the naive
  // reference below, without its per-offset copies.
  using ScanResult = watermark::ScanResult;
  [[nodiscard]] Result<ScanResult> detect_with_scan(
      std::span<const double> rates, std::size_t max_offset) const;

  // Structured scan configuration, for callers that opt into the
  // vectorized lane explicitly.  use_simd = false reproduces
  // detect_with_scan(rates, max_offset) exactly; use_simd = true runs
  // CorrelationKernel::scan_simd (reassociated scores, verdict-
  // identical and ULP-bounded against the scalar lane; see correlate.h)
  // and silently degrades to the scalar lane when the vector lane is
  // unavailable on this build/host.
  struct DetectConfig {
    std::size_t max_offset = 0;
    bool use_simd = false;
  };
  [[nodiscard]] Result<ScanResult> detect_with_scan(
      std::span<const double> rates, const DetectConfig& config) const;

  // The retained naive per-offset scan: copies each window and
  // recomputes every statistic from scratch through independent plain
  // loops.  Test-only oracle for the kernel's bit-identity contract
  // (and the baseline the A-SCAN bench measures against) — new callers
  // want detect_with_scan.
  [[nodiscard]] Result<ScanResult> detect_with_scan_reference(
      std::span<const double> rates, std::size_t max_offset) const;

  [[nodiscard]] const PnCode& code() const noexcept { return kernel_.code(); }
  [[nodiscard]] const CorrelationKernel& kernel() const noexcept {
    return kernel_;
  }

 private:
  CorrelationKernel kernel_;
};

}  // namespace lexfor::watermark
