// Anonymous P2P overlay (OneSwarm-style), the substrate for §IV.A.
//
// In OneSwarm-like systems, peers exchange data only with *trusted*
// neighbors; a query for content is answered directly by a neighbor that
// holds it, or forwarded through trusted links to someone who does, with
// the neighbor acting as a proxy.  The investigator (Prusty/Levine/
// Liberatore, CCS'11; paper §IV.A) exploits the timing difference:
// direct sources answer after a local lookup, proxies add per-hop
// forwarding delay.  The overlay provides ground truth (who really holds
// the file) so classification accuracy can be measured.

#pragma once

#include <optional>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace lexfor::anonp2p {

struct OverlayConfig {
  std::size_t num_peers = 64;
  // Each peer gets ~this many trusted links (the graph is kept connected
  // by a ring backbone plus random chords).
  std::size_t trusted_degree = 4;
  // Fraction of peers holding the target file.
  double file_popularity = 0.15;
  // Mean local lookup delay when a peer answers from its own store.
  double local_lookup_ms = 20.0;
  // Mean one-way per-hop forwarding delay on a trusted link.
  double hop_delay_ms = 60.0;
  // Queries are not forwarded beyond this many hops (TTL).
  int max_forward_hops = 3;
  std::uint64_t seed = 42;
};

class Overlay {
 public:
  explicit Overlay(OverlayConfig config);

  [[nodiscard]] std::size_t peer_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] const std::vector<PeerId>& neighbors(PeerId p) const;
  [[nodiscard]] bool holds_file(PeerId p) const;
  [[nodiscard]] std::size_t holder_count() const;

  // Hop distance from `p` to its nearest file holder over trusted links
  // (0 if p itself holds it); nullopt if none within the TTL.
  [[nodiscard]] std::optional<int> hops_to_nearest_holder(PeerId p) const;

  // Simulates one query sent by the investigator to neighbor `p` and
  // returns the response delay in milliseconds, or nullopt when the
  // query times out (no holder within TTL).  Stochastic: each call draws
  // fresh lookup/forwarding delays from `rng`.
  [[nodiscard]] std::optional<double> query_delay_ms(PeerId p, Rng& rng) const;

  [[nodiscard]] const OverlayConfig& config() const noexcept { return config_; }

 private:
  OverlayConfig config_;
  std::vector<std::vector<PeerId>> adjacency_;
  std::vector<bool> has_file_;
};

}  // namespace lexfor::anonp2p
