// The §IV.A timing investigation.
//
// Law enforcement joins the anonymous P2P overlay as an ordinary peer,
// issues repeated queries to each neighbor, and measures response
// delays.  Direct sources cluster around the local-lookup delay;
// proxies add round-trip forwarding delay per hop.  The paper's point:
// everything observed here is traffic the protocol exposes to any peer,
// so this investigation needs NO warrant/court order/subpoena — and the
// investigator's constructor asks the compliance engine to confirm it.

#pragma once

#include <vector>

#include "anonp2p/overlay.h"
#include "legal/engine.h"
#include "util/rng.h"

namespace lexfor::anonp2p {

struct NeighborClassification {
  PeerId peer;
  bool classified_source = false;
  bool truly_source = false;  // ground truth from the overlay
  double median_delay_ms = 0.0;
  std::size_t responses = 0;
  std::size_t timeouts = 0;
};

struct InvestigationReport {
  std::vector<NeighborClassification> neighbors;
  double threshold_ms = 0.0;          // decision boundary used
  double accuracy = 0.0;              // fraction classified correctly
  double true_positive_rate = 0.0;    // sources identified as sources
  double false_positive_rate = 0.0;   // proxies misidentified as sources
  // The engine's confirmation that the technique is process-free.
  legal::Determination legality;
};

// Finer-grained verdicts: the CCS'11 attack the paper cites
// distinguishes direct sources from "trusted nodes of the sources"
// (one-hop proxies) — both are investigative leads, with different
// evidentiary weight.
enum class PeerRole {
  kSource,        // answers from its own store
  kTrustedProxy,  // one hop from a holder
  kDistant,       // two or more hops, or no response
};

struct MulticlassFinding {
  PeerId peer;
  PeerRole classified = PeerRole::kDistant;
  PeerRole truth = PeerRole::kDistant;
  double median_delay_ms = 0.0;
};

struct MulticlassReport {
  std::vector<MulticlassFinding> findings;
  double source_threshold_ms = 0.0;  // below: source
  double proxy_threshold_ms = 0.0;   // below (and above source): trusted proxy
  double accuracy = 0.0;             // exact three-way agreement
};

class TimingInvestigator {
 public:
  // `probe_peers`: the neighbors the investigating peer connects to.
  // `threshold_ms` <= 0 selects automatic thresholding (largest gap in
  // the sorted median delays).
  TimingInvestigator(const Overlay& overlay, std::vector<PeerId> probe_peers,
                     double threshold_ms = -1.0);

  // Runs `probes_per_neighbor` queries against every neighbor and
  // classifies each as source or proxy.
  [[nodiscard]] InvestigationReport run(std::size_t probes_per_neighbor,
                                        Rng& rng) const;

  // Three-way classification (source / trusted proxy / distant).  The
  // thresholds are derived from the overlay's delay structure: a source
  // answers after one local lookup; a one-hop proxy adds one forwarding
  // round trip.  Boundaries sit halfway between the expected medians of
  // adjacent classes.
  [[nodiscard]] MulticlassReport run_multiclass(std::size_t probes_per_neighbor,
                                                Rng& rng) const;

  // The legal scenario this investigation instantiates (Table-1 scene 10).
  [[nodiscard]] static legal::Scenario legal_scenario();

 private:
  const Overlay& overlay_;
  std::vector<PeerId> probe_peers_;
  double threshold_ms_;
};

}  // namespace lexfor::anonp2p
