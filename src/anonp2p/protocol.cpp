#include "anonp2p/protocol.h"

#include <algorithm>

namespace lexfor::anonp2p {

FloodOutcome FloodSimulation::run_query(PeerId origin, Rng& rng) const {
  FloodOutcome outcome;
  outcome.stats.per_peer_messages.assign(overlay_.peer_count(), 0);
  if (!origin.valid() || origin.value() >= overlay_.peer_count()) {
    return outcome;
  }

  netsim::EventQueue events;
  const double hop_ms = overlay_.config().hop_delay_ms;

  // Duplicate suppression: a peer processes the query once.
  std::unordered_set<std::uint64_t> seen;
  std::unordered_set<std::uint64_t> responded;

  // Recursive lambda via std::function-free approach: use a local struct.
  struct Ctx {
    const Overlay& overlay;
    const FloodConfig& config;
    netsim::EventQueue& events;
    Rng& rng;
    FloodOutcome& outcome;
    std::unordered_set<std::uint64_t>& seen;
    std::unordered_set<std::uint64_t>& responded;
    PeerId origin;
    double hop_ms;

    // Delivers a RESPONSE back along `path` (path.back() is the holder,
    // path.front() the origin).
    void send_response(std::vector<PeerId> path, std::size_t pos) {
      if (pos == 0) {
        // Arrived at the origin.
        const double now_ms = events.now().millis();
        if (!outcome.first_response_ms.has_value() ||
            now_ms < *outcome.first_response_ms) {
          outcome.first_response_ms = now_ms;
        }
        return;
      }
      ++outcome.stats.responses_forwarded;
      const double delay = rng.exponential(hop_ms) + config.handling_ms;
      events.schedule_in(
          SimDuration::from_ms(delay),
          [this, path = std::move(path), pos]() mutable {
            ++outcome.stats.per_peer_messages[path[pos - 1].value()];
            send_response(std::move(path), pos - 1);
          });
    }

    // Processes the QUERY at `here`, arrived via `path` (path.back() ==
    // here), with `ttl` hops of budget left.
    void handle_query(std::vector<PeerId> path, int ttl) {
      const PeerId here = path.back();
      ++outcome.stats.per_peer_messages[here.value()];

      if (!seen.insert(here.value()).second) {
        ++outcome.stats.duplicates_dropped;
        return;
      }

      // Holders answer (once each) after a local lookup.
      if (here != origin && overlay.holds_file(here) &&
          responded.insert(here.value()).second) {
        ++outcome.responders;
        const double lookup =
            rng.exponential(overlay.config().local_lookup_ms);
        events.schedule_in(SimDuration::from_ms(lookup),
                           [this, path]() mutable {
                             const std::size_t pos = path.size() - 1;
                             send_response(std::move(path), pos);
                           });
      }

      if (ttl <= 0) return;
      for (const auto neighbor : overlay.neighbors(here)) {
        // Don't flood straight back where we came from.
        if (path.size() >= 2 && neighbor == path[path.size() - 2]) continue;
        ++outcome.stats.queries_forwarded;
        const double delay = rng.exponential(hop_ms) + config.handling_ms;
        auto next_path = path;
        next_path.push_back(neighbor);
        events.schedule_in(
            SimDuration::from_ms(delay),
            [this, next_path = std::move(next_path), ttl]() mutable {
              handle_query(std::move(next_path), ttl - 1);
            });
      }
    }
  };

  Ctx ctx{overlay_, config_, events, rng,
          outcome, seen,    responded, origin, hop_ms};

  events.schedule_at(SimTime::zero(), [&ctx, origin] {
    ctx.handle_query({origin}, ctx.config.ttl);
  });
  events.run();
  return outcome;
}

}  // namespace lexfor::anonp2p
