// Message-level query-flooding protocol on the discrete-event engine.
//
// Where Overlay::query_delay_ms() models the *timing* of one probe
// analytically, FloodSimulation executes the protocol: QUERY messages
// flood across trusted links with a TTL and duplicate suppression,
// holders answer with a RESPONSE routed back along the query's reverse
// path, and every peer counts the messages it handles.  This yields the
// quantities the analytical model cannot: total message overhead per
// probe, per-peer load, and response times that include queueing on
// shared links.

#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "anonp2p/overlay.h"
#include "netsim/event_queue.h"

namespace lexfor::anonp2p {

struct FloodConfig {
  int ttl = 3;
  // Per-link one-way forwarding delay: Exp(hop_delay_ms) from the
  // overlay's config, re-drawn per message.
  // Per-peer handling delay before forwarding/answering.
  double handling_ms = 2.0;
};

struct FloodStats {
  std::uint64_t queries_forwarded = 0;   // QUERY copies put on links
  std::uint64_t responses_forwarded = 0; // RESPONSE hops
  std::uint64_t duplicates_dropped = 0;  // suppressed re-floods
  std::vector<std::uint32_t> per_peer_messages;  // handled per peer
};

struct FloodOutcome {
  // First response's arrival time at the querying peer, if any holder
  // was reached within the TTL.
  std::optional<double> first_response_ms;
  std::size_t responders = 0;  // distinct holders that answered
  FloodStats stats;
};

class FloodSimulation {
 public:
  FloodSimulation(const Overlay& overlay, FloodConfig config)
      : overlay_(overlay), config_(config) {}

  // Runs one flood query issued by `origin` at t=0; deterministic given
  // `rng`'s state.
  [[nodiscard]] FloodOutcome run_query(PeerId origin, Rng& rng) const;

 private:
  const Overlay& overlay_;
  FloodConfig config_;
};

}  // namespace lexfor::anonp2p
