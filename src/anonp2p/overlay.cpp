#include "anonp2p/overlay.h"

#include <algorithm>
#include <deque>

namespace lexfor::anonp2p {

Overlay::Overlay(OverlayConfig config) : config_(config) {
  const std::size_t n = std::max<std::size_t>(config_.num_peers, 2);
  adjacency_.assign(n, {});
  has_file_.assign(n, false);

  Rng rng(config_.seed);

  auto linked = [&](std::size_t a, std::size_t b) {
    const PeerId pb{b};
    const auto& adj = adjacency_[a];
    return std::find(adj.begin(), adj.end(), pb) != adj.end();
  };
  auto link = [&](std::size_t a, std::size_t b) {
    if (a == b || linked(a, b)) return;
    adjacency_[a].push_back(PeerId{b});
    adjacency_[b].push_back(PeerId{a});
  };

  // Ring backbone keeps the trust graph connected.
  for (std::size_t i = 0; i < n; ++i) link(i, (i + 1) % n);

  // Random chords up to the target degree.
  for (std::size_t i = 0; i < n; ++i) {
    while (adjacency_[i].size() < config_.trusted_degree) {
      const std::size_t j = rng.uniform(n);
      if (j == i) continue;
      if (linked(i, j)) {
        // Dense small overlays can saturate; bail out rather than spin.
        if (adjacency_[i].size() + 1 >= n) break;
        continue;
      }
      link(i, j);
    }
  }

  // Assign file holders; guarantee at least one so queries can succeed.
  for (std::size_t i = 0; i < n; ++i) {
    has_file_[i] = rng.bernoulli(config_.file_popularity);
  }
  if (std::none_of(has_file_.begin(), has_file_.end(),
                   [](bool b) { return b; })) {
    has_file_[rng.uniform(n)] = true;
  }
}

const std::vector<PeerId>& Overlay::neighbors(PeerId p) const {
  static const std::vector<PeerId> kEmpty;
  if (!p.valid() || p.value() >= adjacency_.size()) return kEmpty;
  return adjacency_[p.value()];
}

bool Overlay::holds_file(PeerId p) const {
  return p.valid() && p.value() < has_file_.size() && has_file_[p.value()];
}

std::size_t Overlay::holder_count() const {
  return static_cast<std::size_t>(
      std::count(has_file_.begin(), has_file_.end(), true));
}

std::optional<int> Overlay::hops_to_nearest_holder(PeerId p) const {
  if (!p.valid() || p.value() >= adjacency_.size()) return std::nullopt;
  if (has_file_[p.value()]) return 0;

  std::vector<int> dist(adjacency_.size(), -1);
  std::deque<std::size_t> frontier{p.value()};
  dist[p.value()] = 0;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop_front();
    if (dist[u] >= config_.max_forward_hops) continue;
    for (const auto nb : adjacency_[u]) {
      const std::size_t v = nb.value();
      if (dist[v] != -1) continue;
      dist[v] = dist[u] + 1;
      if (has_file_[v]) return dist[v];
      frontier.push_back(v);
    }
  }
  return std::nullopt;
}

std::optional<double> Overlay::query_delay_ms(PeerId p, Rng& rng) const {
  if (!p.valid() || p.value() >= adjacency_.size()) return std::nullopt;

  if (has_file_[p.value()]) {
    // Direct source: a single local lookup.
    return rng.exponential(config_.local_lookup_ms);
  }

  const auto hops = hops_to_nearest_holder(p);
  if (!hops.has_value()) return std::nullopt;  // timeout: no holder in TTL

  // Proxy path: the query travels `hops` trusted links each way, plus the
  // holder's local lookup, plus the proxy's own handling.
  double delay = rng.exponential(config_.local_lookup_ms);
  for (int h = 0; h < 2 * *hops; ++h) {
    delay += rng.exponential(config_.hop_delay_ms);
  }
  return delay;
}

}  // namespace lexfor::anonp2p
