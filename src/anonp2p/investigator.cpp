#include "anonp2p/investigator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stats.h"

namespace lexfor::anonp2p {

TimingInvestigator::TimingInvestigator(const Overlay& overlay,
                                       std::vector<PeerId> probe_peers,
                                       double threshold_ms)
    : overlay_(overlay),
      probe_peers_(std::move(probe_peers)),
      threshold_ms_(threshold_ms) {}

legal::Scenario TimingInvestigator::legal_scenario() {
  // The investigator observes only information the protocol exposes to
  // every participating peer: Table-1 scene 10.
  return legal::Scenario{}
      .named("timing probes in an anonymous P2P overlay")
      .by(legal::ActorKind::kLawEnforcement)
      .acquiring(legal::DataKind::kContent)
      .located(legal::DataState::kPublicVenue)
      .when(legal::Timing::kStored)
      .exposed_publicly()
      .shared();
}

InvestigationReport TimingInvestigator::run(std::size_t probes_per_neighbor,
                                            Rng& rng) const {
  InvestigationReport report;
  report.legality = legal::ComplianceEngine{}.evaluate(legal_scenario());

  // Probe every neighbor.
  for (const auto peer : probe_peers_) {
    NeighborClassification c;
    c.peer = peer;
    c.truly_source = overlay_.holds_file(peer);
    std::vector<double> delays;
    for (std::size_t i = 0; i < probes_per_neighbor; ++i) {
      const auto d = overlay_.query_delay_ms(peer, rng);
      if (d.has_value()) {
        delays.push_back(*d);
        ++c.responses;
      } else {
        ++c.timeouts;
      }
    }
    c.median_delay_ms =
        delays.empty() ? std::numeric_limits<double>::infinity()
                       : percentile(delays, 50.0);
    report.neighbors.push_back(c);
  }

  // Threshold: explicit, or the midpoint of the largest gap between
  // consecutive sorted medians (sources and proxies form two clusters).
  double threshold = threshold_ms_;
  if (threshold <= 0.0) {
    std::vector<double> medians;
    for (const auto& c : report.neighbors) {
      if (std::isfinite(c.median_delay_ms)) medians.push_back(c.median_delay_ms);
    }
    std::sort(medians.begin(), medians.end());
    if (medians.size() >= 2) {
      // Split at the largest RELATIVE gap: sources cluster at the local
      // lookup delay, proxies at least one forwarding round-trip above,
      // so the source/proxy boundary dominates in relative terms even
      // when multi-hop proxies create larger absolute gaps further up.
      double best_gap = -1.0;
      threshold = medians.front() * 2.0;  // fallback: all one cluster
      for (std::size_t i = 0; i + 1 < medians.size(); ++i) {
        const double mid = (medians[i] + medians[i + 1]) / 2.0;
        if (mid <= 0.0) continue;
        const double gap = (medians[i + 1] - medians[i]) / mid;
        if (gap > best_gap) {
          best_gap = gap;
          threshold = mid;
        }
      }
    } else if (medians.size() == 1) {
      threshold = medians.front() * 2.0;
    } else {
      threshold = 0.0;
    }
  }
  report.threshold_ms = threshold;

  // Classify and score against ground truth.
  std::size_t correct = 0, sources = 0, proxies = 0, tp = 0, fp = 0;
  for (auto& c : report.neighbors) {
    c.classified_source = std::isfinite(c.median_delay_ms) &&
                          c.median_delay_ms <= threshold;
    if (c.classified_source == c.truly_source) ++correct;
    if (c.truly_source) {
      ++sources;
      if (c.classified_source) ++tp;
    } else {
      ++proxies;
      if (c.classified_source) ++fp;
    }
  }
  const std::size_t total = report.neighbors.size();
  report.accuracy = total ? static_cast<double>(correct) / total : 0.0;
  report.true_positive_rate =
      sources ? static_cast<double>(tp) / sources : 0.0;
  report.false_positive_rate =
      proxies ? static_cast<double>(fp) / proxies : 0.0;
  return report;
}

}  // namespace lexfor::anonp2p

namespace lexfor::anonp2p {

MulticlassReport TimingInvestigator::run_multiclass(
    std::size_t probes_per_neighbor, Rng& rng) const {
  MulticlassReport report;

  // Delay anatomy: a source answers after ~Exp(local); a one-hop proxy
  // adds two forwarding legs of ~Exp(hop) each; every further hop adds
  // two more.  Class centers are local, local + 2*hop, local + 4*hop;
  // boundaries sit midway.
  const double local = overlay_.config().local_lookup_ms;
  const double hop = overlay_.config().hop_delay_ms;
  report.source_threshold_ms = local + hop;
  report.proxy_threshold_ms = local + 3.0 * hop;

  std::size_t correct = 0;
  for (const auto peer : probe_peers_) {
    MulticlassFinding f;
    f.peer = peer;

    const auto hops = overlay_.hops_to_nearest_holder(peer);
    if (hops.has_value() && *hops == 0) {
      f.truth = PeerRole::kSource;
    } else if (hops.has_value() && *hops == 1) {
      f.truth = PeerRole::kTrustedProxy;
    } else {
      f.truth = PeerRole::kDistant;
    }

    std::vector<double> delays;
    for (std::size_t i = 0; i < probes_per_neighbor; ++i) {
      const auto d = overlay_.query_delay_ms(peer, rng);
      if (d.has_value()) delays.push_back(*d);
    }
    f.median_delay_ms = delays.empty()
                            ? std::numeric_limits<double>::infinity()
                            : percentile(delays, 50.0);

    if (f.median_delay_ms <= report.source_threshold_ms) {
      f.classified = PeerRole::kSource;
    } else if (f.median_delay_ms <= report.proxy_threshold_ms) {
      f.classified = PeerRole::kTrustedProxy;
    } else {
      f.classified = PeerRole::kDistant;
    }
    correct += f.classified == f.truth;
    report.findings.push_back(f);
  }
  report.accuracy = probe_peers_.empty()
                        ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(probe_peers_.size());
  return report;
}

}  // namespace lexfor::anonp2p
