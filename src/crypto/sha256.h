// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for evidence integrity (chain of custody), disk imaging, and the
// hash-based known-file search of Table-1 scene 18.  Streaming interface
// plus one-shot helpers.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace lexfor::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept { reset(); }

  // Resets to the initial state so the object can be reused.
  void reset() noexcept;

  // Absorbs `len` bytes.
  void update(const std::uint8_t* data, std::size_t len) noexcept;
  void update(const Bytes& data) noexcept {
    update(data.data(), data.size());
  }
  void update(std::string_view s) noexcept {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  // Finalizes and returns the digest.  The object must be reset() before
  // further use.
  [[nodiscard]] Digest finish() noexcept;

  // One-shot helpers.
  [[nodiscard]] static Digest hash(const Bytes& data) noexcept;
  [[nodiscard]] static Digest hash(std::string_view s) noexcept;
  [[nodiscard]] static std::string hex(const Bytes& data);
  [[nodiscard]] static std::string hex(std::string_view s);

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_;
  std::uint64_t total_len_;
};

// HMAC-SHA256 (RFC 2104): keyed integrity for chain-of-custody records.
[[nodiscard]] Sha256::Digest hmac_sha256(const Bytes& key, const Bytes& message) noexcept;

}  // namespace lexfor::crypto
