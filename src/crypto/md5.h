// MD5 (RFC 1321), implemented from scratch.
//
// MD5 is cryptographically broken but remains the lingua franca of
// forensic known-file hash sets (NSRL), so the disk-image hash search
// supports it alongside SHA-256.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace lexfor::crypto {

class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Md5() noexcept { reset(); }

  void reset() noexcept;
  void update(const std::uint8_t* data, std::size_t len) noexcept;
  void update(const Bytes& data) noexcept { update(data.data(), data.size()); }
  void update(std::string_view s) noexcept {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  [[nodiscard]] Digest finish() noexcept;

  [[nodiscard]] static Digest hash(const Bytes& data) noexcept;
  [[nodiscard]] static std::string hex(const Bytes& data);
  [[nodiscard]] static std::string hex(std::string_view s);

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t state_[4];
  std::uint8_t buffer_[64];
  std::size_t buffered_;
  std::uint64_t total_len_;
};

}  // namespace lexfor::crypto
