#include "crypto/sha256.h"

#include <cstring>

#include "util/bytes.h"

namespace lexfor::crypto {
namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

void Sha256::reset() noexcept {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
  buffered_ = 0;
  total_len_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = load_be32(block + i * 4);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::update(const std::uint8_t* data, std::size_t len) noexcept {
  total_len_ += len;
  while (len > 0) {
    if (buffered_ == 0 && len >= 64) {
      // Fast path: process directly from the input.
      process_block(data);
      data += 64;
      len -= 64;
      continue;
    }
    const std::size_t take = std::min(len, std::size_t{64} - buffered_);
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
}

Sha256::Digest Sha256::finish() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros to 56 mod 64, then the 64-bit big-endian bit
  // length.  Assembled in one stack buffer and absorbed with a single
  // update() call; padding byte-by-byte costs more than the final
  // compression for short messages.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56 ? 56 - buffered_ : 120 - buffered_) + 8;
  for (int i = 0; i < 8; ++i) {
    pad[pad_len - 8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // total_len_ bookkeeping past this point is irrelevant: bit_len is
  // already captured.
  update(pad, pad_len);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    store_be32(out.data() + i * 4, h_[i]);
  }
  return out;
}

Sha256::Digest Sha256::hash(const Bytes& data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Sha256::Digest Sha256::hash(std::string_view s) noexcept {
  Sha256 h;
  h.update(s);
  return h.finish();
}

std::string Sha256::hex(const Bytes& data) {
  const Digest d = hash(data);
  return to_hex(d.data(), d.size());
}

std::string Sha256::hex(std::string_view s) {
  const Digest d = hash(s);
  return to_hex(d.data(), d.size());
}

Sha256::Digest hmac_sha256(const Bytes& key, const Bytes& message) noexcept {
  constexpr std::size_t kBlock = 64;
  Bytes k = key;
  if (k.size() > kBlock) {
    const auto d = Sha256::hash(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

}  // namespace lexfor::crypto
