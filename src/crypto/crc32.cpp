#include "crypto/crc32.h"

#include <array>

namespace lexfor::crypto {
namespace {

// Table generated at static-init time from the reflected polynomial.
const std::array<std::uint32_t, 256> kTable = [] {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* data,
                           std::size_t len) noexcept {
  for (std::size_t i = 0; i < len; ++i) {
    state = kTable[(state ^ data[i]) & 0xFF] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) noexcept {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

std::uint32_t crc32(const Bytes& data) noexcept {
  return crc32(data.data(), data.size());
}

}  // namespace lexfor::crypto
