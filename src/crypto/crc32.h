// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used as a cheap per-packet payload checksum in the network simulator
// and for quick disk-sector integrity checks where a cryptographic hash
// would be overkill.

#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace lexfor::crypto {

// One-shot CRC over a buffer.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len) noexcept;
[[nodiscard]] std::uint32_t crc32(const Bytes& data) noexcept;

// Incremental interface: feed successive chunks with the running value.
// Start from crc32_init(), finish with crc32_final().
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* data,
                                         std::size_t len) noexcept;
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace lexfor::crypto
