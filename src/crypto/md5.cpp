#include "crypto/md5.h"

#include <cstring>

#include "util/bytes.h"

namespace lexfor::crypto {
namespace {

// Per-round left-rotate amounts (RFC 1321 §3.4).
constexpr int kS[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                        7, 12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20,
                        5, 9,  14, 20, 5, 9,  14, 20, 4, 11, 16, 23,
                        4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                        6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
                        6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i+1))).
constexpr std::uint32_t kK[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Md5::reset() noexcept {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  buffered_ = 0;
  total_len_ = 0;
}

void Md5::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = load_le32(block + i * 4);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];

  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kK[i] + m[g], kS[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(const std::uint8_t* data, std::size_t len) noexcept {
  total_len_ += len;
  while (len > 0) {
    if (buffered_ == 0 && len >= 64) {
      process_block(data);
      data += 64;
      len -= 64;
      continue;
    }
    const std::size_t take = std::min(len, std::size_t{64} - buffered_);
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
}

Md5::Digest Md5::finish() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t len_le[8];
  for (int i = 0; i < 8; ++i) {
    len_le[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  update(len_le, 8);

  Digest out;
  for (int i = 0; i < 4; ++i) {
    store_le32(out.data() + i * 4, state_[i]);
  }
  return out;
}

Md5::Digest Md5::hash(const Bytes& data) noexcept {
  Md5 h;
  h.update(data);
  return h.finish();
}

std::string Md5::hex(const Bytes& data) {
  const Digest d = hash(data);
  return to_hex(d.data(), d.size());
}

std::string Md5::hex(std::string_view s) {
  Md5 h;
  h.update(s);
  const Digest d = h.finish();
  return to_hex(d.data(), d.size());
}

}  // namespace lexfor::crypto
