#include "stream/online_despread.h"

namespace lexfor::stream {

OnlineDespreader::OnlineDespreader(const watermark::CorrelationKernel& kernel,
                                   std::size_t max_offset)
    : OnlineDespreader(kernel, max_offset, nullptr) {}

OnlineDespreader::OnlineDespreader(const watermark::CorrelationKernel& kernel,
                                   std::size_t max_offset, double* storage)
    : kernel_(kernel),
      max_offset_(max_offset),
      window_len_(window_capacity(kernel, max_offset)) {
  if (storage == nullptr) {
    owned_ = std::make_unique<double[]>(window_len_);
    storage = owned_.get();
  }
  window_ = storage;
  // Fixed k = max_offset + 1: identical to scan() over a series of
  // max_offset + n bins (or longer — scan clamps to the same k).
  verdict_.scan.best.correlation = -2.0;  // below any achievable value
  verdict_.scan.best.threshold = kernel_.scan_threshold(max_offset + 1);
}

std::optional<StreamScore> OnlineDespreader::push(double rate) {
  if (verdict_.complete) {
    ++ignored_;
    return std::nullopt;
  }
  const std::size_t n = kernel_.length();
  const std::size_t t = bins_++;

  // The window is sized for every bin a candidate offset can read
  // (t < n + max_offset until the verdict completes), so bin t lands
  // flat at window_[t] — no ring seam, no mirror write, no per-offset
  // running sums.
  window_[t] = rate;

  if (t + 1 < n) return std::nullopt;
  const std::size_t off = t + 1 - n;  // the offset bin t finalizes
  if (off > max_offset_) return std::nullopt;

  // despread()'s sequential sum adds window_[off..off+n) in index
  // order — the order the bins arrived — so the score is bit-identical
  // to the batch scan over the same series.
  const double corr = kernel_.despread(window_ + off, /*code_begin=*/0, n);
  ++verdict_.offsets_scored;
  if (corr > verdict_.scan.best.correlation) {
    verdict_.scan.best.correlation = corr;
    verdict_.scan.offset = off;
  }
  verdict_.scan.best.detected =
      verdict_.scan.best.correlation > verdict_.scan.best.threshold;
  verdict_.complete = off == max_offset_;
  return StreamScore{off, corr};
}

}  // namespace lexfor::stream
