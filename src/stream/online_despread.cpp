#include "stream/online_despread.h"

#include <algorithm>

namespace lexfor::stream {

OnlineDespreader::OnlineDespreader(const watermark::CorrelationKernel& kernel,
                                   std::size_t max_offset)
    : kernel_(kernel),
      max_offset_(max_offset),
      window_(2 * kernel.length(), 0.0),
      sums_(max_offset + 1, 0.0) {
  // Fixed k = max_offset + 1: identical to scan() over a series of
  // max_offset + n bins (or longer — scan clamps to the same k).
  verdict_.scan.best.correlation = -2.0;  // below any achievable value
  verdict_.scan.best.threshold = kernel_.scan_threshold(max_offset + 1);
}

std::optional<StreamScore> OnlineDespreader::push(double rate) {
  if (verdict_.complete) {
    ++ignored_;
    return std::nullopt;
  }
  const std::size_t n = kernel_.length();
  const std::size_t t = bins_++;

  // Mirror write keeps every n-bin window contiguous: the copy at
  // [t%n + n] serves windows that wrap the ring seam, and is not
  // overwritten before the last window containing bin t finalizes.
  const std::size_t pos = t % n;
  window_[pos] = rate;
  window_[pos + n] = rate;

  // Accumulate into every offset whose window contains bin t.  For a
  // fixed offset the adds arrive in bin-index order — the same single
  // accumulator chain as the kernel's sequential sum.
  const std::size_t first = t + 1 >= n ? t + 1 - n : 0;
  const std::size_t last = std::min(t, max_offset_);
  for (std::size_t off = first; off <= last; ++off) sums_[off] += rate;

  if (t + 1 < n) return std::nullopt;
  const std::size_t off = t + 1 - n;  // the offset bin t finalizes
  if (off > max_offset_) return std::nullopt;

  const double corr = kernel_.despread_presummed(
      window_.data() + (off % n), /*code_begin=*/0, n, sums_[off]);
  ++verdict_.offsets_scored;
  if (corr > verdict_.scan.best.correlation) {
    verdict_.scan.best.correlation = corr;
    verdict_.scan.offset = off;
  }
  verdict_.scan.best.detected =
      verdict_.scan.best.correlation > verdict_.scan.best.threshold;
  verdict_.complete = off == max_offset_;
  return StreamScore{off, corr};
}

}  // namespace lexfor::stream
