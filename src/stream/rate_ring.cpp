#include "stream/rate_ring.h"

#include <algorithm>
#include <string>

#include "obs/obs.h"

namespace lexfor::stream {

Result<RateRing> RateRing::create(RateRingConfig config) {
  return create(config, nullptr);
}

Result<RateRing> RateRing::create(RateRingConfig config,
                                  std::uint32_t* storage) {
  if (config.capacity == 0) {
    return InvalidArgument("RateRing: capacity must be positive");
  }
  if (config.bin_width.us <= 0) {
    return InvalidArgument("RateRing: bin width must be positive, got " +
                           std::to_string(config.bin_width.us) + "us");
  }
  return RateRing(config, storage);
}

RateRing::RateRing(RateRingConfig config, std::uint32_t* storage)
    : config_(config), capacity_(config.capacity) {
  if (storage == nullptr) {
    owned_ = std::make_unique<std::uint32_t[]>(capacity_);
    storage = owned_.get();
  }
  bins_ = storage;
  std::fill(bins_, bins_ + capacity_, 0u);
}

RecordOutcome RateRing::record(SimTime at) noexcept {
  if (at < config_.start) {
    ++stats_.early_drops;
    LEXFOR_OBS_COUNTER_ADD("stream.ring.early_drops", 1);
    return RecordOutcome::kEarly;
  }
  const auto bin = static_cast<std::uint64_t>((at - config_.start).us /
                                              config_.bin_width.us);
  if (bin < base_) {
    ++stats_.late_drops;
    LEXFOR_OBS_COUNTER_ADD("stream.ring.late_drops", 1);
    return RecordOutcome::kLate;
  }
  if (bin >= base_ + capacity_) {
    ++stats_.overflow_drops;
    LEXFOR_OBS_COUNTER_ADD("stream.ring.overflow_drops", 1);
    return RecordOutcome::kOverflow;
  }
  ++bins_[bin % capacity_];
  ++stats_.recorded;
  if (bin + 1 > high_) high_ = bin + 1;
  return RecordOutcome::kRecorded;
}

std::size_t RateRing::pop_closed(SimTime now, std::vector<std::uint32_t>& out) {
  if (now <= config_.start) return 0;
  // Bin b is closed once its end, start + (b+1)·width, is <= now.
  const auto closed =
      static_cast<std::uint64_t>((now - config_.start).us / config_.bin_width.us);
  std::size_t popped = 0;
  while (base_ < closed) {
    auto& slot = bins_[base_ % capacity_];
    out.push_back(slot);
    slot = 0;  // recycle for bin base_ + capacity
    ++base_;
    ++popped;
  }
  if (high_ < base_) high_ = base_;
  stats_.bins_popped += popped;
  return popped;
}

std::size_t RateRing::occupancy() const noexcept {
  return static_cast<std::size_t>(high_ - base_);
}

}  // namespace lexfor::stream
