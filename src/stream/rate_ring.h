// Fixed-capacity ring-buffer rate recorder for streaming ISP taps.
//
// netsim::RateRecorder grows a vector one bin per window for as long as
// the simulation runs — fine for offline experiments, unacceptable for
// a tap that runs continuously on live traffic (§IV.B collection is a
// pen/trap-style tap, always on).  RateRing keeps exactly `capacity`
// bins of history: packet events are counted into sim-time windows, a
// consumer drains closed windows in order, and anything the ring cannot
// hold is DROPPED AND COUNTED rather than buffered.  Memory is O(capacity)
// regardless of stream length, and every loss is visible in the stats —
// an audit requirement, not a nicety: a tap that silently sheds bins
// produces a rate series the despreader cannot be trusted on.
//
// Bin i covers sim time [start + i·bin_width, start + (i+1)·bin_width).
// The ring holds bins [base, base + capacity); record() classifies each
// event as recorded / early (before `start`) / late (bin already
// consumed) / overflow (bin beyond the ring while the consumer lags).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/sim_time.h"
#include "util/status.h"

namespace lexfor::stream {

struct RateRingConfig {
  SimTime start = SimTime::zero();  // bin 0 begins here
  SimDuration bin_width = SimDuration::from_ms(400.0);
  std::size_t capacity = 1024;  // bins retained; the hard memory bound
};

// Every event is accounted for exactly once: recorded + early_drops +
// late_drops + overflow_drops == events offered.
struct RateRingStats {
  std::uint64_t recorded = 0;
  std::uint64_t early_drops = 0;     // event before the tap's start time
  std::uint64_t late_drops = 0;      // bin already drained and recycled
  std::uint64_t overflow_drops = 0;  // ring full, consumer lagging
  std::uint64_t bins_popped = 0;     // closed bins handed to the consumer

  [[nodiscard]] std::uint64_t offered() const noexcept {
    return recorded + early_drops + late_drops + overflow_drops;
  }
};

enum class RecordOutcome : std::uint8_t {
  kRecorded,
  kEarly,
  kLate,
  kOverflow,
};

class RateRing {
 public:
  [[nodiscard]] static Result<RateRing> create(RateRingConfig config);

  // Same ring over caller-owned storage of `config.capacity` counters
  // (stream::TapRegistry carves one slab per tap from a shared
  // util::Arena).  The buffer must outlive the ring; it is zeroed here,
  // so it need not arrive initialized.
  [[nodiscard]] static Result<RateRing> create(RateRingConfig config,
                                               std::uint32_t* storage);

  // Counts one packet event at sim time `at` into its bin; never grows
  // memory.  Out-of-window events are dropped and classified.
  RecordOutcome record(SimTime at) noexcept;

  // Drains every bin fully closed at `now` (bin end <= now) in order,
  // appending counts to `out` — zero-count bins included, since silence
  // is signal for the despreader.  Returns the number of bins popped.
  std::size_t pop_closed(SimTime now, std::vector<std::uint32_t>& out);

  // Index of the oldest bin still held (== bins popped so far).
  [[nodiscard]] std::uint64_t base_bin() const noexcept { return base_; }
  // Bins currently occupied (base through the highest bin touched).
  [[nodiscard]] std::size_t occupancy() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const RateRingStats& stats() const noexcept { return stats_; }
  [[nodiscard]] SimTime start() const noexcept { return config_.start; }
  [[nodiscard]] SimDuration bin_width() const noexcept {
    return config_.bin_width;
  }

 private:
  // storage == nullptr means "own a fresh buffer"; the pointer is
  // stable either way, so default moves are safe.
  RateRing(RateRingConfig config, std::uint32_t* storage);

  RateRingConfig config_;
  std::unique_ptr<std::uint32_t[]> owned_;  // null when storage is external
  std::uint32_t* bins_ = nullptr;  // bin b lives at bins_[b % capacity]
  std::size_t capacity_ = 0;
  std::uint64_t base_ = 0;  // oldest retained bin index
  std::uint64_t high_ = 0;  // one past the highest bin touched
  RateRingStats stats_;
};

}  // namespace lexfor::stream
