#include "stream/tap_session.h"

#include <string>
#include <utility>

#include "obs/obs.h"

namespace lexfor::stream {

namespace {

// Admission shared by both create overloads: evaluate the scenario,
// check the held authority, emit the audit record.  Returns the
// determination on admit, the refusal status otherwise — and in the
// refusal case the caller has allocated NOTHING yet.
Result<legal::Determination> admit(const TapSessionConfig& config) {
  if (!config.target.valid()) {
    return InvalidArgument("TapSession: target node is invalid");
  }

  // Legal gate first: nothing is allocated for a session the engine or
  // the held authority rules out.  The shared verdict cache makes the
  // evaluation a lookup when the same posture was already linted.
  legal::BatchEvaluator evaluator;
  legal::Determination admission = evaluator.evaluate(config.scenario);
  const legal::ProcessKind required = admission.needs_process
                                          ? admission.required_process
                                          : legal::ProcessKind::kNone;
  const Status permitted = config.authority.permits(
      required, config.scenario.data, config.location, config.ring.start);
  if (!permitted.ok()) {
    LEXFOR_OBS_COUNTER_ADD("stream.tap.refused", 1);
    LEXFOR_OBS_EVENT(obs::Level::kAudit, "stream", "tap_refused",
                     "scenario=" + config.scenario.name +
                         ",required=" + std::string(to_string(required)),
                     config.ring.start);
    return permitted;
  }

  LEXFOR_OBS_COUNTER_ADD("stream.tap.admitted", 1);
  LEXFOR_OBS_EVENT(obs::Level::kAudit, "stream", "tap_admitted",
                   "scenario=" + config.scenario.name +
                       ",required=" + std::string(to_string(required)) +
                       ",held=" +
                       std::string(to_string(config.authority.kind())),
                   config.ring.start);
  return admission;
}

}  // namespace

Result<TapSession> TapSession::create(
    const watermark::CorrelationKernel& kernel, TapSessionConfig config) {
  auto admission = admit(config);
  if (!admission.ok()) return admission.status();

  auto ring = RateRing::create(config.ring);
  if (!ring.ok()) return ring.status();
  return TapSession(kernel, std::move(config), std::move(admission).value(),
                    std::move(ring).value(), /*window=*/nullptr);
}

Result<TapSession> TapSession::create(
    const watermark::CorrelationKernel& kernel, TapSessionConfig config,
    util::Arena& arena) {
  // Admission before ANY arena carve: a refused tap leaves the arena
  // untouched (TapRegistry relies on this to keep its slab exactly
  // sized to the admitted taps).
  auto admission = admit(config);
  if (!admission.ok()) return admission.status();
  if (config.ring.capacity == 0) {
    return InvalidArgument("RateRing: capacity must be positive");
  }

  // One cache-line-aligned slab per tap: ring counters, then the
  // despread window.
  auto* bins =
      arena.alloc_array_aligned<std::uint32_t>(config.ring.capacity, 64);
  auto* window = arena.alloc_array_aligned<double>(
      OnlineDespreader::window_capacity(kernel, config.max_offset), 64);
  auto ring = RateRing::create(config.ring, bins);
  if (!ring.ok()) return ring.status();
  return TapSession(kernel, std::move(config), std::move(admission).value(),
                    std::move(ring).value(), window);
}

Status TapSession::attach(netsim::Network& net) {
  return net.add_node_tap(
      config_.target, [this](const netsim::TapEvent& ev) { on_traversal(ev); });
}

void TapSession::on_traversal(const netsim::TapEvent& ev) {
  // A node tap sees both directions on every incident link; the rate
  // series the despreader wants is ARRIVALS at the suspect's access
  // node (the downstream side of the ISP tap).
  if (ev.to != config_.target) {
    ++stats_.foreign_packets;
    LEXFOR_OBS_COUNTER_ADD("stream.tap.foreign_packets", 1);
    return;
  }
  ++stats_.packets_seen;
  LEXFOR_OBS_COUNTER_ADD("stream.tap.packets", 1);
  const RecordOutcome outcome = ring_.record(ev.at);
  if (outcome != RecordOutcome::kRecorded) {
    LEXFOR_OBS_COUNTER_ADD("stream.tap.drops", 1);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "stream", "tap_drop",
                     "outcome=" +
                         std::to_string(static_cast<int>(outcome)),
                     ev.at);
  }
  LEXFOR_OBS_GAUGE_SET("stream.tap.ring_occupancy",
                       static_cast<std::int64_t>(ring_.occupancy()));
  // Opportunistic drain: sim time only moves forward, so every bin
  // ending at or before this traversal is final.
  pump(ev.at);
}

void TapSession::ingest_bin(double rate) {
  (void)despreader_.push(rate);
  ++stats_.bins_scored;
  LEXFOR_OBS_COUNTER_ADD("stream.tap.bins", 1);
}

void TapSession::pump(SimTime now) {
  LEXFOR_OBS_PROFILE("stream.tap.pump");
  const std::uint64_t first_bin = ring_.base_bin();
  drain_.clear();
  const std::size_t popped = ring_.pop_closed(now, drain_);
  if (popped == 0) return;

  const double bin_sec = ring_.bin_width().seconds();
  for (std::size_t i = 0; i < popped; ++i) {
    // Same counts→rates conversion as the batch RateRecorder::rates(),
    // so streamed bins are bit-identical despread input.
    (void)despreader_.push(static_cast<double>(drain_[i]) / bin_sec);
    ++stats_.bins_scored;
    const SimTime bin_end =
        ring_.start() + ring_.bin_width() *
                            static_cast<std::int64_t>(first_bin + i + 1);
    LEXFOR_OBS_HISTOGRAM_RECORD("stream.tap.bin_latency_us",
                                (now - bin_end).us);
  }
  LEXFOR_OBS_COUNTER_ADD("stream.tap.bins", static_cast<std::int64_t>(popped));
  LEXFOR_OBS_GAUGE_SET("stream.tap.ring_occupancy",
                       static_cast<std::int64_t>(ring_.occupancy()));
}

}  // namespace lexfor::stream
