// TapSession: a legally-admitted streaming ISP tap.
//
// The §IV.B traceback is only lawful as NON-CONTENT, real-time
// collection under a pen/trap-style court order — the paper's central
// point is that the technique's evidentiary value depends on that
// posture.  TapSession enforces it by construction, the same way
// capture::CaptureDevice does for packet capture:
//
//   admission — create() runs the collection Scenario through
//   legal::BatchEvaluator (shared process-wide verdict cache, so a
//   verdict derived at plan-lint time is a hit here) and then checks
//   the held GrantedAuthority against the determined minimum process.
//   A non-compliant scenario or insufficient authority means NO
//   SESSION EXISTS: zero bins are ever recorded, which is the
//   acceptance bar, not a best-effort filter.
//
//   bounded recording — packet arrivals at the target node are binned
//   into a RateRing (O(capacity) memory).  Overload and mid-flight
//   topology changes degrade to counted drops + audit events, never
//   crashes or unbounded buffering.
//
//   online detection — pump() drains closed bins into an
//   OnlineDespreader, so the verdict is available the moment a full
//   code period has been scored, bit-identical to the batch oracle.
//
// Obs surface: stream.tap.{admitted,refused,packets,foreign_packets,
// bins,drops} counters, stream.tap.bin_latency_us histogram (sim-time
// lag between a bin closing and it being scored), and the
// stream.tap.ring_occupancy gauge.  Admission decisions are kAudit
// trace events — part of the custody record.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "legal/authority.h"
#include "legal/batch.h"
#include "util/arena.h"
#include "legal/scenario.h"
#include "netsim/network.h"
#include "stream/online_despread.h"
#include "stream/rate_ring.h"
#include "util/status.h"
#include "watermark/correlate.h"

namespace lexfor::stream {

struct TapSessionConfig {
  // The collection posture the legal engine evaluates (e.g.
  // tornet::collection_scenario(): law enforcement, addressing data,
  // in transit, real time).
  legal::Scenario scenario;
  legal::GrantedAuthority authority;
  std::string location = "suspect ISP";  // must be within authority scope
  NodeId target;                         // node whose arrivals are binned
  RateRingConfig ring;                   // bin 0 = first code chip
  std::size_t max_offset = 0;            // candidate despread offsets
};

struct TapSessionStats {
  std::uint64_t packets_seen = 0;     // traversals toward the target
  std::uint64_t foreign_packets = 0;  // traversals not toward the target
  std::uint64_t bins_scored = 0;      // bins fed to the despreader
};

class TapSession {
 public:
  // The legal gate.  Evaluates `config.scenario`, checks the authority,
  // and refuses (PermissionDenied / InvalidArgument) before any
  // recording state is allocated.  The kernel must outlive the session.
  [[nodiscard]] static Result<TapSession> create(
      const watermark::CorrelationKernel& kernel, TapSessionConfig config);

  // Same gate, with every recording buffer (ring counters + despread
  // window) carved from `arena` in one cache-line-aligned slab —
  // TapRegistry backs all of its taps this way.  Admission still runs
  // FIRST: a refused tap takes nothing from the arena.  The arena must
  // outlive the session.
  [[nodiscard]] static Result<TapSession> create(
      const watermark::CorrelationKernel& kernel, TapSessionConfig config,
      util::Arena& arena);

  // Attaches to every link incident to the target node.
  [[nodiscard]] Status attach(netsim::Network& net);

  // The tap entry point (also callable directly in tests).  Records
  // arrivals at the target into the ring and opportunistically drains
  // bins the event clock has closed.
  void on_traversal(const netsim::TapEvent& ev);

  // Drains every bin closed at `now` into the despreader.  Call once
  // after the simulation with net.now() to flush the tail.
  void pump(SimTime now);

  // Direct feed for callers that already hold binned rates (the
  // single-pass tornet traceback bins all flows once, then fans the
  // bins out to every admitted tap).  Bypasses the ring — the bin was
  // closed by the producer — but still counts toward bins_scored and
  // drives the same despreader as pump().
  void ingest_bin(double rate);

  [[nodiscard]] const OnlineVerdict& verdict() const noexcept {
    return despreader_.verdict();
  }
  [[nodiscard]] const OnlineDespreader& despreader() const noexcept {
    return despreader_;
  }
  [[nodiscard]] const RateRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const TapSessionStats& stats() const noexcept { return stats_; }
  // The admission analysis the session was created under — goes with
  // the evidence when the verdict is offered in court.
  [[nodiscard]] const legal::Determination& admission() const noexcept {
    return admission_;
  }

 private:
  // window == nullptr: the despreader owns its buffer (heap path).
  TapSession(const watermark::CorrelationKernel& kernel,
             TapSessionConfig config, legal::Determination admission,
             RateRing ring, double* window)
      : config_(std::move(config)),
        admission_(std::move(admission)),
        ring_(std::move(ring)),
        despreader_(kernel, config_.max_offset, window) {}

  TapSessionConfig config_;
  legal::Determination admission_;
  RateRing ring_;
  OnlineDespreader despreader_;
  TapSessionStats stats_;
  std::vector<std::uint32_t> drain_;  // reused pop_closed scratch
};

}  // namespace lexfor::stream
