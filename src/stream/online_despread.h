// Online DSSS despreader: incremental detection over streaming rate bins.
//
// The batch pipeline buffers the whole rate series, then runs
// CorrelationKernel::scan over candidate offsets [0, max_offset].  A live
// ISP tap cannot buffer the whole series — and does not need to: for a
// code of n chips, offset `off` only depends on bins [off, off + n), so
// once bin off + n - 1 arrives that offset can be scored and never
// revisited.  OnlineDespreader exploits this:
//
//   * a mirrored ring of the last n bins (2n doubles, each bin written
//     twice) keeps every n-bin window CONTIGUOUS in memory, so the
//     kernel's unmodified correlate pass runs straight over it;
//   * one running sum per candidate offset, accumulated as bins arrive.
//     Adds land on each per-offset accumulator in bin-index order —
//     exactly the order the kernel's sequential sum performs them — so
//     the resulting mean is bit-identical to the batch pass (this is
//     the "partial score": the expensive second pass is skipped via
//     despread_presummed);
//   * offsets finalize in increasing order, reproducing scan()'s
//     earliest-offset tie-breaking, under the same Bonferroni threshold
//     (scan_threshold with k = max_offset + 1).
//
// Contract (enforced by tests and the A-STREAM bench gate): after
// max_offset + n bins, verdict() is BIT-IDENTICAL — correlation,
// threshold, offset, and decision — to
// CorrelationKernel::scan(series, max_offset) on any batch series whose
// first max_offset + n bins equal the streamed ones; for max_offset = 0
// that is Detector::detect on the same window.  The batch path stays
// the oracle: this class holds no scoring math of its own, only the
// bookkeeping to feed the kernel incrementally.  Peak memory is
// 2n + max_offset + 1 doubles — O(code length + offset window),
// independent of stream length.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/status.h"
#include "watermark/correlate.h"

namespace lexfor::stream {

// A per-offset score, emitted the moment that offset's window closes.
struct StreamScore {
  std::size_t offset = 0;
  double correlation = 0.0;
};

struct OnlineVerdict {
  watermark::ScanResult scan;      // best offset so far + decision
  std::size_t offsets_scored = 0;  // windows finalized so far
  bool complete = false;           // all offsets [0, max_offset] scored
};

class OnlineDespreader {
 public:
  // The kernel must outlive this despreader (same lifetime rule as
  // ScanJob).  `max_offset` fixes the candidate window — and therefore
  // the Bonferroni threshold — at construction.
  OnlineDespreader(const watermark::CorrelationKernel& kernel,
                   std::size_t max_offset);

  // Ingests the next rate bin.  Returns the offset score this bin
  // completed, if any (bin t finalizes offset t - n + 1).  Bins past
  // the candidate window are counted and ignored — the verdict is
  // frozen once complete, matching what batch scan() would return.
  std::optional<StreamScore> push(double rate);

  [[nodiscard]] const OnlineVerdict& verdict() const noexcept {
    return verdict_;
  }
  [[nodiscard]] std::size_t bins_consumed() const noexcept { return bins_; }
  [[nodiscard]] std::uint64_t bins_ignored() const noexcept {
    return ignored_;
  }
  [[nodiscard]] std::size_t max_offset() const noexcept { return max_offset_; }
  // Doubles held, the O(1)-in-stream-length bound the bench gates on.
  [[nodiscard]] std::size_t memory_doubles() const noexcept {
    return window_.size() + sums_.size();
  }

 private:
  const watermark::CorrelationKernel& kernel_;
  std::size_t max_offset_;
  std::vector<double> window_;  // mirrored ring: bin t at [t%n] and [t%n + n]
  std::vector<double> sums_;    // running window sum per candidate offset
  std::size_t bins_ = 0;        // bins ingested (== next bin index)
  std::uint64_t ignored_ = 0;   // bins past the candidate window
  OnlineVerdict verdict_;
};

}  // namespace lexfor::stream
