// Online DSSS despreader: incremental detection over streaming rate bins.
//
// The batch pipeline buffers the whole rate series, then runs
// CorrelationKernel::scan over candidate offsets [0, max_offset].  A live
// ISP tap cannot buffer the whole series — and does not need to: for a
// code of n chips, offset `off` only depends on bins [off, off + n), so
// once bin off + n - 1 arrives that offset can be scored and never
// revisited.  OnlineDespreader exploits this:
//
//   * one FLAT linear window of n + max_offset doubles, sized up front
//     from max_offset — exactly the bins the candidate offsets can ever
//     read.  Bin t lands at window[t], every candidate window is
//     contiguous by construction, and the memory footprint is fixed the
//     moment the despreader is built (the bench gate asserts it never
//     grows).  The historic version kept a 2n mirrored ring PLUS one
//     running sum per offset (2n + max_offset + 1 doubles) and spent
//     O(min(n, max_offset)) adds per bin maintaining those sums — the
//     A-STREAM degrade from 2.6 to 28.9 ns/bin at degree 12 × offset
//     256 was that loop;
//   * offsets finalize in increasing order, reproducing scan()'s
//     earliest-offset tie-breaking, under the same Bonferroni threshold
//     (scan_threshold with k = max_offset + 1).  A finalized offset is
//     scored by the kernel's own despread() over window + off: its
//     sequential sum adds bins in index order — the order they arrived
//     — so the score is bit-identical to the batch pass.
//
// Contract (enforced by tests and the A-STREAM bench gate): after
// max_offset + n bins, verdict() is BIT-IDENTICAL — correlation,
// threshold, offset, and decision — to
// CorrelationKernel::scan(series, max_offset) on any batch series whose
// first max_offset + n bins equal the streamed ones; for max_offset = 0
// that is Detector::detect on the same window.  The batch path stays
// the oracle: this class holds no scoring math of its own, only the
// bookkeeping to feed the kernel incrementally.  Peak memory is
// n + max_offset doubles — O(code length + offset window), independent
// of stream length, allocated once in the constructor.
//
// Storage can be supplied externally (stream::TapRegistry backs every
// tap's window from one util::Arena): the despreader then owns nothing
// and the caller guarantees the buffer outlives it.  Either way the
// window pointer is stable, so the type stays safely movable.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "util/status.h"
#include "watermark/correlate.h"

namespace lexfor::stream {

// A per-offset score, emitted the moment that offset's window closes.
struct StreamScore {
  std::size_t offset = 0;
  double correlation = 0.0;
};

struct OnlineVerdict {
  watermark::ScanResult scan;      // best offset so far + decision
  std::size_t offsets_scored = 0;  // windows finalized so far
  bool complete = false;           // all offsets [0, max_offset] scored
};

class OnlineDespreader {
 public:
  // The kernel must outlive this despreader (same lifetime rule as
  // ScanJob).  `max_offset` fixes the candidate window — and therefore
  // the Bonferroni threshold AND the memory footprint
  // (kernel.length() + max_offset doubles) — at construction.
  OnlineDespreader(const watermark::CorrelationKernel& kernel,
                   std::size_t max_offset);

  // Same, over caller-owned storage of at least window_capacity(kernel,
  // max_offset) doubles (TapRegistry carves these from one arena).  The
  // buffer must outlive the despreader; it is overwritten as bins
  // arrive and need not be initialized.  nullptr means "allocate
  // internally" — identical to the two-argument constructor.
  OnlineDespreader(const watermark::CorrelationKernel& kernel,
                   std::size_t max_offset, double* storage);

  // Doubles of storage the external-storage constructor requires.
  [[nodiscard]] static std::size_t window_capacity(
      const watermark::CorrelationKernel& kernel,
      std::size_t max_offset) noexcept {
    return kernel.length() + max_offset;
  }

  // Ingests the next rate bin.  Returns the offset score this bin
  // completed, if any (bin t finalizes offset t - n + 1).  Bins past
  // the candidate window are counted and ignored — the verdict is
  // frozen once complete, matching what batch scan() would return.
  std::optional<StreamScore> push(double rate);

  [[nodiscard]] const OnlineVerdict& verdict() const noexcept {
    return verdict_;
  }
  [[nodiscard]] std::size_t bins_consumed() const noexcept { return bins_; }
  [[nodiscard]] std::uint64_t bins_ignored() const noexcept {
    return ignored_;
  }
  [[nodiscard]] std::size_t max_offset() const noexcept { return max_offset_; }
  // Doubles held, the O(1)-in-stream-length bound the bench gates on.
  // Fixed at construction: n + max_offset.
  [[nodiscard]] std::size_t memory_doubles() const noexcept {
    return window_len_;
  }

 private:
  const watermark::CorrelationKernel& kernel_;
  std::size_t max_offset_;
  std::unique_ptr<double[]> owned_;  // null when storage is external
  double* window_ = nullptr;         // flat: bin t at window_[t]
  std::size_t window_len_ = 0;       // n + max_offset
  std::size_t bins_ = 0;             // bins ingested (== next bin index)
  std::uint64_t ignored_ = 0;        // bins past the candidate window
  OnlineVerdict verdict_;
};

}  // namespace lexfor::stream
