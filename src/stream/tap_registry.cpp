#include "stream/tap_registry.h"

#include <utility>

namespace lexfor::stream {

Result<TapSession*> TapRegistry::add_tap(
    const watermark::CorrelationKernel& kernel, TapSessionConfig config) {
  auto session = TapSession::create(kernel, std::move(config), arena_);
  if (!session.ok()) {
    ++refused_;
    return session.status();
  }
  taps_.push_back(
      std::make_unique<TapSession>(std::move(session).value()));
  return taps_.back().get();
}

Status TapRegistry::attach_all(netsim::Network& net) {
  for (auto& tap : taps_) {
    if (Status s = tap->attach(net); !s.ok()) return s;
  }
  return Status::Ok();
}

void TapRegistry::pump_all(SimTime now) {
  for (auto& tap : taps_) tap->pump(now);
}

RateRingStats TapRegistry::aggregate_ring_stats() const noexcept {
  RateRingStats total;
  for (const auto& tap : taps_) {
    const RateRingStats& s = tap->ring().stats();
    total.recorded += s.recorded;
    total.early_drops += s.early_drops;
    total.late_drops += s.late_drops;
    total.overflow_drops += s.overflow_drops;
    total.bins_popped += s.bins_popped;
  }
  return total;
}

}  // namespace lexfor::stream
