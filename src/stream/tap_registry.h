// TapRegistry: one ring allocator behind every suspect tap, so a
// multi-suspect investigation taps ALL candidate flows in a single
// simulation pass.
//
// The per-suspect alternative — run the simulation once per candidate,
// tapping one node each time — multiplies simulated events by the
// suspect count and heap-allocates a fresh ring + despread window per
// run.  A §IV.B collection point does not get to replay reality: every
// candidate's tap must ride the SAME traffic.  TapRegistry makes that
// the cheap path:
//
//   * admission per suspect — add_tap() routes each candidate's
//     collection posture through TapSession::create's legal gate
//     (shared legal::BatchEvaluator verdict cache + GrantedAuthority
//     check) BEFORE any state exists.  A refused suspect consumes zero
//     arena bytes and zero bins; the refusal count is part of the
//     registry's audit surface.
//
//   * one arena, many taps — every admitted tap's ring counters and
//     despread window are carved from the registry's util::Arena in
//     cache-line-aligned slabs (allocate_aligned), so N taps cost one
//     allocator and a handful of chunk mmaps instead of 3N heap
//     allocations, and iterating taps walks dense memory.
//
//   * single-pass fan-out — attach_all() hooks every tap to its node,
//     one Network::run() drives them all, pump_all() flushes the
//     tails.  For pre-binned rates (the tornet traceback bins every
//     flow once), feed_bin() fans one bin to one tap directly.
//
//   * exhaustive drop accounting — aggregate_ring_stats() sums every
//     tap's RateRingStats; the invariant recorded + early + late +
//     overflow == offered holds for the aggregate exactly as it holds
//     per tap (tests pin it under overload and mid-flight topology
//     changes).
//
// Results are locked identical to the per-suspect loop: each tap owns
// an independent OnlineDespreader fed exactly the bins its node saw,
// so sharing the allocator and the simulation pass changes WHERE the
// state lives, never what any despreader reads.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "netsim/network.h"
#include "stream/tap_session.h"
#include "util/arena.h"
#include "util/status.h"
#include "watermark/correlate.h"

namespace lexfor::stream {

class TapRegistry {
 public:
  TapRegistry() = default;

  // Admission-gated tap creation: runs the full TapSession legal gate,
  // then backs the tap's ring + despread window from the shared arena.
  // On refusal the registry is unchanged (no arena growth, no slot) and
  // refused() increments.  The returned pointer is stable for the
  // registry's lifetime.  The kernel must outlive the registry.
  [[nodiscard]] Result<TapSession*> add_tap(
      const watermark::CorrelationKernel& kernel, TapSessionConfig config);

  // Attaches every admitted tap to its target node.  Stops at the
  // first failure (a dangling NodeId is a caller bug, not a drop).
  [[nodiscard]] Status attach_all(netsim::Network& net);

  // Flushes every tap's closed bins into its despreader — call with
  // net.now() after the simulation to score the tails.
  void pump_all(SimTime now);

  // Direct feed of one pre-binned rate to tap `index` (single-pass
  // traceback over analytically binned flows).
  void feed_bin(std::size_t index, double rate) {
    taps_[index]->ingest_bin(rate);
  }

  [[nodiscard]] std::size_t size() const noexcept { return taps_.size(); }
  [[nodiscard]] bool empty() const noexcept { return taps_.empty(); }
  [[nodiscard]] TapSession& tap(std::size_t index) { return *taps_[index]; }
  [[nodiscard]] const TapSession& tap(std::size_t index) const {
    return *taps_[index];
  }
  // Admissions the legal gate refused (audit surface, not an error).
  [[nodiscard]] std::uint64_t refused() const noexcept { return refused_; }

  // Sum of every tap's ring accounting.  The conservation invariant
  // recorded + early_drops + late_drops + overflow_drops == offered()
  // is exact on the aggregate (each addend is exact per tap).
  [[nodiscard]] RateRingStats aggregate_ring_stats() const noexcept;

  // Arena bytes actually carved for tap state — the "one allocator"
  // claim, measurable.
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_.bytes_allocated();
  }

 private:
  util::Arena arena_;
  // unique_ptr per tap: TapSession is address-sensitive (netsim taps
  // capture `this`), so slots must never relocate as taps are added.
  std::vector<std::unique_ptr<TapSession>> taps_;
  std::uint64_t refused_ = 0;
};

}  // namespace lexfor::stream
