// Authority-scoped capture devices (pen register, trap & trace, Title
// III full-content intercept).
//
// The paper's statutory split — Pen/Trap for addressing, Title III for
// content — is enforced here *by construction*: a device is created
// against a GrantedAuthority, refuses to start if the authority is
// insufficient for its mode, and a pen/trap device physically discards
// payload bytes before they are retained (18 U.S.C. § 3121(c): use
// technology reasonably available to avoid recording content).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "capture/filter.h"
#include "legal/authority.h"
#include "legal/types.h"
#include "netsim/network.h"
#include "netsim/trace.h"
#include "util/ids.h"
#include "util/status.h"

namespace lexfor::capture {

enum class CaptureMode {
  kPenRegister,   // outgoing addressing only
  kTrapAndTrace,  // incoming addressing only
  kPenTrap,       // both directions, addressing only
  kFullContent,   // headers + payload (Title III)
};

[[nodiscard]] constexpr std::string_view to_string(CaptureMode m) noexcept {
  switch (m) {
    case CaptureMode::kPenRegister: return "pen register";
    case CaptureMode::kTrapAndTrace: return "trap and trace";
    case CaptureMode::kPenTrap: return "pen/trap";
    case CaptureMode::kFullContent: return "full-content intercept";
  }
  return "?";
}

// The minimum process each capture mode requires when no exception
// applies: pen/trap devices need a pen/trap court order; full content
// needs a Title III order.
[[nodiscard]] constexpr legal::ProcessKind minimum_process(CaptureMode m) noexcept {
  switch (m) {
    case CaptureMode::kPenRegister:
    case CaptureMode::kTrapAndTrace:
    case CaptureMode::kPenTrap:
      return legal::ProcessKind::kCourtOrder;
    case CaptureMode::kFullContent:
      return legal::ProcessKind::kWiretapOrder;
  }
  return legal::ProcessKind::kWiretapOrder;
}

struct CapturedRecord {
  SimTime at;
  netsim::PacketHeader header;     // non-content, always retained
  std::optional<Bytes> payload;    // retained only in kFullContent mode
  NodeId from;                     // traversal direction observed
  NodeId to;
};

struct CaptureStats {
  std::uint64_t packets_observed = 0;  // passed the tap
  std::uint64_t packets_retained = 0;  // matched direction + scope filter
  std::uint64_t packets_out_of_scope = 0;  // matched direction, failed scope
  std::uint64_t packets_after_expiry = 0;  // arrived after the process lapsed
  std::uint64_t payload_bytes_retained = 0;
  std::uint64_t payload_bytes_discarded = 0;  // minimization at work
};

// A capture device attached at a target node ("the ISP connected to the
// suspect").  Create via CaptureDevice::create(), which performs the
// legal gate; attach() wires it to the network.
class CaptureDevice {
 public:
  // `required` is the minimum process the compliance engine determined
  // for this acquisition (kNone when an exception applies, e.g. victim
  // consent).  The device refuses creation when the held authority does
  // not satisfy both the determination and the mode's statutory floor.
  static Result<CaptureDevice> create(CaptureMode mode,
                                      const legal::GrantedAuthority& authority,
                                      legal::ProcessKind required,
                                      NodeId target, std::string location,
                                      SimTime now);

  // Attaches to every link incident to the target node.
  Status attach(netsim::Network& net);

  [[nodiscard]] CaptureMode mode() const noexcept { return mode_; }
  [[nodiscard]] const std::vector<CapturedRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const CaptureStats& stats() const noexcept { return stats_; }

  // Restricts retention to packets matching the warrant-scope filter
  // (§III.A.2.a: capture only records related to the particular crime).
  // Out-of-scope traffic is counted but never retained.
  void set_scope_filter(Filter filter) { scope_filter_ = std::move(filter); }
  [[nodiscard]] const Filter& scope_filter() const noexcept {
    return scope_filter_;
  }

  // The tap entry point (also callable directly in tests).
  void on_traversal(const netsim::TapEvent& ev);

  // When the instrument lapses (issued_at + validity); nullopt for
  // process-free captures.  The device stops retaining at that moment
  // (§III.A.2.b: "a search warrant may expire and revoke after a
  // specific time period").
  [[nodiscard]] std::optional<SimTime> expires_at() const noexcept {
    return expiry_;
  }

 private:
  CaptureDevice(CaptureMode mode, NodeId target, std::string location,
                std::optional<SimTime> expiry)
      : mode_(mode),
        target_(target),
        location_(std::move(location)),
        expiry_(expiry) {}

  [[nodiscard]] bool direction_matches(const netsim::TapEvent& ev) const noexcept;

  CaptureMode mode_;
  NodeId target_;
  std::string location_;
  std::optional<SimTime> expiry_;
  Filter scope_filter_;  // default: matches everything
  std::vector<CapturedRecord> records_;
  CaptureStats stats_;
};

// Packages a device's retained records as a serializable Trace — the
// handoff point into the evidence pipeline (hash, custody-chain, store).
[[nodiscard]] netsim::Trace to_trace(const CaptureDevice& device);

}  // namespace lexfor::capture
