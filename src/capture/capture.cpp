#include "capture/capture.h"

namespace lexfor::capture {

Result<CaptureDevice> CaptureDevice::create(
    CaptureMode mode, const legal::GrantedAuthority& authority,
    legal::ProcessKind required, NodeId target, std::string location,
    SimTime now) {
  if (!target.valid()) {
    return InvalidArgument("capture: target node is invalid");
  }
  // The statutory floor for the device's mode composes with the
  // engine-determined requirement: a full-content device can never run
  // on less than the stricter of the two.
  const legal::ProcessKind floor =
      required == legal::ProcessKind::kNone
          ? legal::ProcessKind::kNone  // an exception excuses the statute
          : legal::stricter(required, minimum_process(mode));

  const legal::DataKind kind = mode == CaptureMode::kFullContent
                                   ? legal::DataKind::kContent
                                   : legal::DataKind::kAddressing;
  const Status permitted = authority.permits(floor, kind, location, now);
  if (!permitted.ok()) return permitted;

  // Bind the device's lifetime to the instrument's: a capture running on
  // legal process must stop when the process lapses.
  std::optional<SimTime> expiry;
  if (floor != legal::ProcessKind::kNone && authority.process().has_value()) {
    const auto& proc = *authority.process();
    expiry = proc.issued_at + proc.validity;
  }
  return CaptureDevice{mode, target, std::move(location), expiry};
}

Status CaptureDevice::attach(netsim::Network& net) {
  return net.add_node_tap(
      target_, [this](const netsim::TapEvent& ev) { on_traversal(ev); });
}

bool CaptureDevice::direction_matches(const netsim::TapEvent& ev) const noexcept {
  switch (mode_) {
    case CaptureMode::kPenRegister:
      // Outgoing addressing: traffic leaving the target.
      return ev.from == target_;
    case CaptureMode::kTrapAndTrace:
      // Incoming addressing: traffic arriving at the target.
      return ev.to == target_;
    case CaptureMode::kPenTrap:
    case CaptureMode::kFullContent:
      return ev.from == target_ || ev.to == target_;
  }
  return false;
}

void CaptureDevice::on_traversal(const netsim::TapEvent& ev) {
  ++stats_.packets_observed;
  if (!direction_matches(ev)) return;
  if (expiry_.has_value() && ev.at > *expiry_) {
    ++stats_.packets_after_expiry;
    return;
  }
  if (!scope_filter_.matches(ev.packet.header)) {
    ++stats_.packets_out_of_scope;
    return;
  }

  CapturedRecord rec;
  rec.at = ev.at;
  rec.header = ev.packet.header;
  rec.from = ev.from;
  rec.to = ev.to;

  if (mode_ == CaptureMode::kFullContent) {
    rec.payload = ev.packet.payload;
    stats_.payload_bytes_retained += ev.packet.payload.size();
  } else {
    // Minimization: a pen/trap device must not record content.  The
    // payload never reaches the retained record.
    stats_.payload_bytes_discarded += ev.packet.payload.size();
  }
  ++stats_.packets_retained;
  records_.push_back(std::move(rec));
}

netsim::Trace to_trace(const CaptureDevice& device) {
  netsim::Trace trace;
  for (const auto& rec : device.records()) {
    trace.add(netsim::TraceRecord{rec.at, rec.header, rec.payload});
  }
  return trace;
}

}  // namespace lexfor::capture
