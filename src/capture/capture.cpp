#include "capture/capture.h"

#include "obs/obs.h"

namespace lexfor::capture {

Result<CaptureDevice> CaptureDevice::create(
    CaptureMode mode, const legal::GrantedAuthority& authority,
    legal::ProcessKind required, NodeId target, std::string location,
    SimTime now) {
  if (!target.valid()) {
    return InvalidArgument("capture: target node is invalid");
  }
  // The statutory floor for the device's mode composes with the
  // engine-determined requirement: a full-content device can never run
  // on less than the stricter of the two.
  const legal::ProcessKind floor =
      required == legal::ProcessKind::kNone
          ? legal::ProcessKind::kNone  // an exception excuses the statute
          : legal::stricter(required, minimum_process(mode));

  const legal::DataKind kind = mode == CaptureMode::kFullContent
                                   ? legal::DataKind::kContent
                                   : legal::DataKind::kAddressing;
  const Status permitted = authority.permits(floor, kind, location, now);
  if (!permitted.ok()) {
    LEXFOR_OBS_COUNTER_ADD("capture.devices_refused", 1);
    LEXFOR_OBS_EVENT(obs::Level::kAudit, "capture", "device_refused",
                     "mode=" + std::string(to_string(mode)), now);
    return permitted;
  }

  // Bind the device's lifetime to the instrument's: a capture running on
  // legal process must stop when the process lapses.
  std::optional<SimTime> expiry;
  if (floor != legal::ProcessKind::kNone && authority.process().has_value()) {
    const auto& proc = *authority.process();
    expiry = proc.issued_at + proc.validity;
  }
  LEXFOR_OBS_COUNTER_ADD("capture.devices_created", 1);
  LEXFOR_OBS_EVENT(obs::Level::kAudit, "capture", "device_created",
                   "mode=" + std::string(to_string(mode)) +
                       ",authority=" + std::string(to_string(floor)),
                   now);
  return CaptureDevice{mode, target, std::move(location), expiry};
}

Status CaptureDevice::attach(netsim::Network& net) {
  return net.add_node_tap(
      target_, [this](const netsim::TapEvent& ev) { on_traversal(ev); });
}

bool CaptureDevice::direction_matches(const netsim::TapEvent& ev) const noexcept {
  switch (mode_) {
    case CaptureMode::kPenRegister:
      // Outgoing addressing: traffic leaving the target.
      return ev.from == target_;
    case CaptureMode::kTrapAndTrace:
      // Incoming addressing: traffic arriving at the target.
      return ev.to == target_;
    case CaptureMode::kPenTrap:
    case CaptureMode::kFullContent:
      return ev.from == target_ || ev.to == target_;
  }
  return false;
}

void CaptureDevice::on_traversal(const netsim::TapEvent& ev) {
  ++stats_.packets_observed;
  LEXFOR_OBS_COUNTER_ADD("capture.packets_observed", 1);
  if (!direction_matches(ev)) return;
  // The statutory filter, made observable: every packet the device saw
  // but refused to retain leaves a trace explaining which legal limit
  // (expired instrument, warrant scope) stopped it.
  if (expiry_.has_value() && ev.at > *expiry_) {
    ++stats_.packets_after_expiry;
    LEXFOR_OBS_COUNTER_ADD("capture.packets_after_expiry", 1);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "capture", "refused_after_expiry",
                     "packet=" + std::to_string(ev.packet.id.value()), ev.at);
    return;
  }
  if (!scope_filter_.matches(ev.packet.header)) {
    ++stats_.packets_out_of_scope;
    LEXFOR_OBS_COUNTER_ADD("capture.packets_out_of_scope", 1);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "capture", "refused_out_of_scope",
                     "packet=" + std::to_string(ev.packet.id.value()), ev.at);
    return;
  }

  CapturedRecord rec;
  rec.at = ev.at;
  rec.header = ev.packet.header;
  rec.from = ev.from;
  rec.to = ev.to;

  if (mode_ == CaptureMode::kFullContent) {
    rec.payload = ev.packet.payload;
    stats_.payload_bytes_retained += ev.packet.payload.size();
    LEXFOR_OBS_COUNTER_ADD("capture.payload_bytes_retained",
                           ev.packet.payload.size());
  } else {
    // Minimization: a pen/trap device must not record content.  The
    // payload never reaches the retained record.
    stats_.payload_bytes_discarded += ev.packet.payload.size();
    LEXFOR_OBS_COUNTER_ADD("capture.payload_bytes_discarded",
                           ev.packet.payload.size());
  }
  ++stats_.packets_retained;
  LEXFOR_OBS_COUNTER_ADD("capture.packets_retained", 1);
  LEXFOR_OBS_EVENT(obs::Level::kDebug, "capture", "retained",
                   "packet=" + std::to_string(ev.packet.id.value()), ev.at);
  records_.push_back(std::move(rec));
}

netsim::Trace to_trace(const CaptureDevice& device) {
  netsim::Trace trace;
  for (const auto& rec : device.records()) {
    trace.add(netsim::TraceRecord{rec.at, rec.header, rec.payload});
  }
  return trace;
}

}  // namespace lexfor::capture
