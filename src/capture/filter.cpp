#include "capture/filter.h"

#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace lexfor::capture {

Filter::Filter()
    : pred_([](const netsim::PacketHeader&) { return true; }), text_("any") {}

Filter Filter::host(NodeId node) {
  return Filter(
      [node](const netsim::PacketHeader& h) {
        return h.src == node || h.dst == node;
      },
      "host " + std::to_string(node.value()));
}

Filter Filter::src(NodeId node) {
  return Filter([node](const netsim::PacketHeader& h) { return h.src == node; },
                "src " + std::to_string(node.value()));
}

Filter Filter::dst(NodeId node) {
  return Filter([node](const netsim::PacketHeader& h) { return h.dst == node; },
                "dst " + std::to_string(node.value()));
}

Filter Filter::port(std::uint16_t p) {
  return Filter(
      [p](const netsim::PacketHeader& h) {
        return h.src_port == p || h.dst_port == p;
      },
      "port " + std::to_string(p));
}

Filter Filter::dst_port(std::uint16_t p) {
  return Filter(
      [p](const netsim::PacketHeader& h) { return h.dst_port == p; },
      "dstport " + std::to_string(p));
}

Filter Filter::protocol(netsim::Protocol proto) {
  return Filter(
      [proto](const netsim::PacketHeader& h) { return h.protocol == proto; },
      std::string("proto ") +
          (proto == netsim::Protocol::kTcp ? "tcp" : "udp"));
}

Filter Filter::max_size(std::uint32_t bytes) {
  return Filter(
      [bytes](const netsim::PacketHeader& h) { return h.payload_size <= bytes; },
      "maxsize " + std::to_string(bytes));
}

Filter Filter::operator&&(const Filter& other) const {
  Pred a = pred_, b = other.pred_;
  return Filter(
      [a, b](const netsim::PacketHeader& h) { return a(h) && b(h); },
      "(" + text_ + " and " + other.text_ + ")");
}

Filter Filter::operator||(const Filter& other) const {
  Pred a = pred_, b = other.pred_;
  return Filter(
      [a, b](const netsim::PacketHeader& h) { return a(h) || b(h); },
      "(" + text_ + " or " + other.text_ + ")");
}

Filter Filter::operator!() const {
  Pred a = pred_;
  return Filter([a](const netsim::PacketHeader& h) { return !a(h); },
                "(not " + text_ + ")");
}

bool Filter::matches(const netsim::PacketHeader& header) const {
  return pred_(header);
}

namespace {

// Recursive-descent parser over a token vector.
class Parser {
 public:
  explicit Parser(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Filter> parse() {
    auto e = expr();
    if (!e.ok()) return e;
    if (pos_ != tokens_.size()) {
      return InvalidArgument("filter parse: trailing tokens after '" +
                             tokens_[pos_ - 1] + "'");
    }
    return e;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= tokens_.size(); }
  [[nodiscard]] const std::string& peek() const { return tokens_[pos_]; }
  std::string take() { return tokens_[pos_++]; }

  Result<Filter> expr() {
    auto left = term();
    if (!left.ok()) return left;
    Filter acc = std::move(left).value();
    while (!at_end() && peek() == "or") {
      take();
      auto right = term();
      if (!right.ok()) return right;
      acc = acc || right.value();
    }
    return acc;
  }

  Result<Filter> term() {
    auto left = factor();
    if (!left.ok()) return left;
    Filter acc = std::move(left).value();
    while (!at_end() && peek() == "and") {
      take();
      auto right = factor();
      if (!right.ok()) return right;
      acc = acc && right.value();
    }
    return acc;
  }

  Result<Filter> factor() {
    if (at_end()) return InvalidArgument("filter parse: unexpected end");
    if (peek() == "not") {
      take();
      auto inner = factor();
      if (!inner.ok()) return inner;
      return !inner.value();
    }
    if (peek() == "(") {
      take();
      auto inner = expr();
      if (!inner.ok()) return inner;
      if (at_end() || peek() != ")") {
        return InvalidArgument("filter parse: missing ')'");
      }
      take();
      return inner;
    }
    return atom();
  }

  Result<std::uint64_t> number() {
    if (at_end()) return InvalidArgument("filter parse: expected a number");
    const std::string tok = take();
    std::uint64_t v = 0;
    for (const char c : tok) {
      if (c < '0' || c > '9') {
        return InvalidArgument("filter parse: '" + tok + "' is not a number");
      }
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  }

  Result<Filter> atom() {
    const std::string kw = take();
    if (kw == "any") return Filter{};
    if (kw == "host" || kw == "src" || kw == "dst") {
      auto n = number();
      if (!n.ok()) return n.status();
      const NodeId node{n.value()};
      if (kw == "host") return Filter::host(node);
      if (kw == "src") return Filter::src(node);
      return Filter::dst(node);
    }
    if (kw == "port" || kw == "dstport") {
      auto n = number();
      if (!n.ok()) return n.status();
      if (n.value() > 65535) {
        return InvalidArgument("filter parse: port out of range");
      }
      const auto p = static_cast<std::uint16_t>(n.value());
      return kw == "port" ? Filter::port(p) : Filter::dst_port(p);
    }
    if (kw == "proto") {
      if (at_end()) return InvalidArgument("filter parse: expected protocol");
      const std::string proto = take();
      if (proto == "tcp") return Filter::protocol(netsim::Protocol::kTcp);
      if (proto == "udp") return Filter::protocol(netsim::Protocol::kUdp);
      return InvalidArgument("filter parse: unknown protocol '" + proto + "'");
    }
    if (kw == "maxsize") {
      auto n = number();
      if (!n.ok()) return n.status();
      return Filter::max_size(static_cast<std::uint32_t>(n.value()));
    }
    return InvalidArgument("filter parse: unknown keyword '" + kw + "'");
  }

  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

std::vector<std::string> tokenize(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == '(' || c == ')') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      out.emplace_back(1, c);
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

Result<Filter> Filter::parse(const std::string& expression) {
  auto tokens = tokenize(expression);
  if (tokens.empty()) return InvalidArgument("filter parse: empty expression");
  return Parser{std::move(tokens)}.parse();
}

}  // namespace lexfor::capture
