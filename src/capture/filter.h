// Packet filters: scope-limited capture (§III.A.2.a of the paper).
//
// "A good technique can identify records that only relate to a
// particular crime" — a warrant that authorizes capturing traffic
// between two endpoints on one service does not authorize vacuuming the
// link.  Filter is a small combinator language (host/port/protocol/
// size predicates, and/or/not) compiled to a predicate over packet
// headers; CaptureDevice applies it before retention, and the filter
// can be parsed from a warrant-scope string so the instrument itself
// carries the technical scope.

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "netsim/packet.h"
#include "util/status.h"

namespace lexfor::capture {

class Filter {
 public:
  // Matches everything (an unscoped instrument).
  Filter();

  // --- atoms -----------------------------------------------------------
  static Filter host(NodeId node);        // src or dst equals node
  static Filter src(NodeId node);
  static Filter dst(NodeId node);
  static Filter port(std::uint16_t p);    // src or dst port
  static Filter dst_port(std::uint16_t p);
  static Filter protocol(netsim::Protocol proto);
  static Filter max_size(std::uint32_t bytes);  // payload_size <= bytes

  // --- combinators --------------------------------------------------------
  [[nodiscard]] Filter operator&&(const Filter& other) const;
  [[nodiscard]] Filter operator||(const Filter& other) const;
  [[nodiscard]] Filter operator!() const;

  // Evaluation.
  [[nodiscard]] bool matches(const netsim::PacketHeader& header) const;

  // Human-readable form ("(host #3 and dst_port 80)").
  [[nodiscard]] const std::string& str() const noexcept { return text_; }

  // Parses a scope expression.  Grammar (whitespace-separated, with
  // parentheses):
  //   expr   := term ('or' term)*
  //   term   := factor ('and' factor)*
  //   factor := 'not' factor | '(' expr ')' | atom
  //   atom   := ('host'|'src'|'dst') NUM | ('port'|'dstport') NUM
  //           | 'proto' ('tcp'|'udp') | 'maxsize' NUM | 'any'
  static Result<Filter> parse(const std::string& expression);

 private:
  using Pred = std::function<bool(const netsim::PacketHeader&)>;
  Filter(Pred pred, std::string text)
      : pred_(std::move(pred)), text_(std::move(text)) {}

  Pred pred_;
  std::string text_;
};

}  // namespace lexfor::capture
