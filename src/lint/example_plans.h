// Canonical fixture plans.
//
// Two plans shared by the example binary, the test suite and the lint
// bench: a clean plan modeled on examples/quickstart.cpp (lints with
// zero diagnostics of any severity), and a deliberately defective plan
// seeding every built-in rule exactly where the tests expect it.

#pragma once

#include "lint/plan.h"

namespace lexfor::lint {

// The quickstart investigation as a plan: a pen/trap order application
// backed by sufficient facts, a header-only capture under it, a public
// overlay observation needing no process, and a subpoenaed subscriber
// lookup derived from the capture.  Zero errors, warnings and notes.
[[nodiscard]] InvestigationPlan clean_quickstart_plan();

// "Operation Glass Harbor": a plan that seeds all six defect classes —
// proof-gap (premature Title III application), missing-process
// (warrantless wiretap), poisonous-tree (transcripts derived from the
// tap; plus an independent-source note), expired-authority and
// standing-mismatch (log pull after the order lapses, invading a third
// party's rights), and unreachable-step (derivation from a later step).
[[nodiscard]] InvestigationPlan defective_wiretap_plan();

}  // namespace lexfor::lint
