// InvestigationPlan: a declarative IR for a contemplated investigation.
//
// The runtime modules discover legal defects only *after* an acquisition
// happens, via the suppression audit.  A plan states, before anything
// executes, what the team intends to do: the instruments they will apply
// for, the acquisitions they will perform (each a legal::Scenario), which
// authority each acquisition relies on, and which earlier evidence it
// derives from.  The PlanLinter analyzes this IR statically — the
// compliance engine is the oracle, but nothing is acquired and no court
// is petitioned.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "legal/facts.h"
#include "legal/scenario.h"
#include "legal/types.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lexfor::lint {

enum class StepKind : std::uint8_t {
  kApplication,  // petition the court for an instrument
  kAcquisition,  // perform an acquisition described by a Scenario
};

[[nodiscard]] constexpr std::string_view to_string(StepKind k) noexcept {
  switch (k) {
    case StepKind::kApplication: return "application";
    case StepKind::kAcquisition: return "acquisition";
  }
  return "?";
}

// One planned step.  Applications model the §III.A.1 ladder: they are
// scheduled, name the requested instrument and its validity window, and
// succeed only if the facts accumulated by then support the standard of
// proof.  Acquisitions name a Scenario, the application whose instrument
// they intend to rely on (invalid id = the team intends to proceed with
// no process), and derivation edges into earlier steps.
struct PlanStep {
  PlanStepId id;
  StepKind kind = StepKind::kAcquisition;
  std::string name;
  SimTime scheduled_at;

  // --- application steps ---------------------------------------------
  legal::ProcessKind requested = legal::ProcessKind::kNone;
  // Rule 41 default: a warrant must be executed within 14 days.
  SimDuration validity = SimDuration::from_sec(14 * 24 * 3600.0);

  // --- acquisition steps ---------------------------------------------
  legal::Scenario scenario;
  // The application step whose granted instrument this acquisition will
  // be executed under.  An invalid id means the team plans no process.
  PlanStepId uses_authority;
  std::vector<PlanStepId> derived_from;
  // Annotations mirroring legal/suppression.h: an out-of-plan lawful
  // source for the same item, or a showing that it would inevitably have
  // been discovered lawfully.
  bool independent_source = false;
  bool inevitable_discovery = false;
  // Whose reasonable expectation of privacy the step invades.  Empty
  // means the charged suspect (the common single-target case).
  std::string aggrieved_party;
  // Facts the team expects this step to yield, feeding later
  // applications' standard-of-proof showings.
  std::vector<legal::Fact> yields_facts;
};

class InvestigationPlan {
 public:
  InvestigationPlan(std::string title, legal::CrimeCategory category)
      : title_(std::move(title)), category_(category) {}

  // --- plan-level facts ----------------------------------------------
  InvestigationPlan& charging(std::string suspect) {
    charged_suspect_ = std::move(suspect);
    return *this;
  }
  InvestigationPlan& with_fact(legal::Fact fact) {
    initial_facts_.push_back(std::move(fact));
    return *this;
  }
  void set_initial_facts(std::vector<legal::Fact> facts) {
    initial_facts_ = std::move(facts);
  }
  void set_category(legal::CrimeCategory category) { category_ = category; }

  // --- step construction ---------------------------------------------
  // Schedules a court application for `kind` at `at`.  Returns the step
  // id acquisitions use to reference the instrument.
  PlanStepId plan_application(std::string name, legal::ProcessKind kind,
                              SimTime at,
                              SimDuration validity = SimDuration::from_sec(
                                  14 * 24 * 3600.0));

  // Fluent configurator for a just-added acquisition step.  Holds the
  // plan and the step index (not a pointer), so it stays valid across
  // further insertions; still intended to be consumed immediately:
  //   auto tap = plan.plan_acquisition(...).using_authority(w).id();
  class StepBuilder {
   public:
    StepBuilder(InvestigationPlan& plan, std::size_t index)
        : plan_(plan), index_(index) {}

    StepBuilder& using_authority(PlanStepId application) {
      step().uses_authority = application;
      return *this;
    }
    StepBuilder& derived(std::vector<PlanStepId> parents) {
      step().derived_from = std::move(parents);
      return *this;
    }
    StepBuilder& independent_source(bool v = true) {
      step().independent_source = v;
      return *this;
    }
    StepBuilder& inevitable_discovery(bool v = true) {
      step().inevitable_discovery = v;
      return *this;
    }
    StepBuilder& aggrieves(std::string who) {
      step().aggrieved_party = std::move(who);
      return *this;
    }
    StepBuilder& yields(legal::Fact fact) {
      step().yields_facts.push_back(std::move(fact));
      return *this;
    }

    [[nodiscard]] PlanStepId id() const {
      return plan_.steps_[index_].id;
    }
    operator PlanStepId() const { return id(); }  // NOLINT

   private:
    PlanStep& step() { return plan_.steps_[index_]; }
    InvestigationPlan& plan_;
    std::size_t index_;
  };

  // Schedules an acquisition of `scenario` at `at`.
  StepBuilder plan_acquisition(std::string name, legal::Scenario scenario,
                               SimTime at);

  // --- accessors ------------------------------------------------------
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::string& charged_suspect() const noexcept {
    return charged_suspect_;
  }
  [[nodiscard]] legal::CrimeCategory category() const noexcept {
    return category_;
  }
  [[nodiscard]] const std::vector<legal::Fact>& initial_facts() const noexcept {
    return initial_facts_;
  }
  [[nodiscard]] const std::vector<PlanStep>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return steps_.size(); }
  [[nodiscard]] const PlanStep* find(PlanStepId id) const;

 private:
  std::string title_;
  std::string charged_suspect_;
  legal::CrimeCategory category_;
  std::vector<legal::Fact> initial_facts_;
  std::vector<PlanStep> steps_;  // insertion order
  IdGenerator<PlanStepId> step_ids_{1};
};

}  // namespace lexfor::lint
