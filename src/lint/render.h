// Renderers for lint reports.
//
// Text for humans (compiler-style "severity: rule: message" lines with
// expanded case citations), JSON for tooling (stable field order and
// rule ids, same escaping rules as legal/export).

#pragma once

#include <string>

#include "lint/diagnostic.h"

namespace lexfor::lint {

// Compiler-style report:
//   plan 'X': 2 errors, 1 warning, 0 notes
//   error: missing-process: step #3 'wiretap': ...
//       rationale line
//     * Katz v. United States, 389 U.S. 347 (1967)
[[nodiscard]] std::string render_text(const LintReport& report);

// {"plan":...,"errors":N,"warnings":N,"notes":N,"clean":bool,
//  "diagnostics":[{"severity":...,"rule":...,"step":N,"step_name":...,
//  "message":...,"rationale":[...],"citations":[...]},...]}
[[nodiscard]] std::string render_json(const LintReport& report);

}  // namespace lexfor::lint
