#include "lint/passes.h"

#include <algorithm>
#include <sstream>

namespace lexfor::lint {
namespace {

Diagnostic make(Severity severity, std::string_view rule,
                const PlanStep& step, std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.rule = std::string(rule);
  d.step = step.id;
  d.step_name = step.name;
  d.message = std::move(message);
  return d;
}

void cite(Diagnostic& d, std::initializer_list<const char*> ids) {
  for (const char* id : ids) {
    if (std::find(d.citations.begin(), d.citations.end(), id) ==
        d.citations.end()) {
      d.citations.emplace_back(id);
    }
  }
}

}  // namespace

void MissingProcessPass::run(const PlanContext& ctx,
                             std::vector<Diagnostic>& out) const {
  for (const auto& a : ctx.steps()) {
    const PlanStep& step = *a.step;
    if (step.kind != StepKind::kAcquisition) continue;
    if (!a.determination.needs_process) continue;
    if (legal::satisfies(a.intended, a.determination.required_process)) {
      continue;
    }

    std::ostringstream os;
    os << "step intends "
       << (a.intended == legal::ProcessKind::kNone && !step.uses_authority.valid()
               ? std::string("no process")
               : std::string(legal::to_string(a.intended)))
       << " but the acquisition requires at least a "
       << legal::to_string(a.determination.required_process);
    if (step.uses_authority.valid() && a.authority == nullptr) {
      os << " (the referenced instrument is never applied for in this plan)";
    }
    Diagnostic d = make(Severity::kError, rule(), step, os.str());
    d.rationale = a.determination.rationale;
    d.citations = a.determination.citations;
    out.push_back(std::move(d));
  }
}

void ExpiredAuthorityPass::run(const PlanContext& ctx,
                               std::vector<Diagnostic>& out) const {
  for (const auto& a : ctx.steps()) {
    const PlanStep& step = *a.step;
    if (step.kind != StepKind::kAcquisition) continue;
    if (a.authority == nullptr || !a.authority_expired) continue;

    const auto in_days = [](SimTime t) { return t.seconds() / 86400.0; };
    std::ostringstream os;
    const SimTime expiry = a.authority->scheduled_at + a.authority->validity;
    if (step.scheduled_at < a.authority->scheduled_at) {
      os << "step is scheduled at day " << in_days(step.scheduled_at)
         << ", before the instrument it relies on is even applied for (day "
         << in_days(a.authority->scheduled_at) << ")";
    } else {
      os << "step is scheduled at day " << in_days(step.scheduled_at)
         << " but the instrument expires at day " << in_days(expiry);
    }
    Diagnostic d = make(Severity::kError, rule(), step, os.str());
    d.rationale.emplace_back(
        "an instrument authorizes acquisitions only inside its validity "
        "window; Rule 41 warrants must be executed within 14 days");
    cite(d, {"sgro-1932", "zimmerman-2002"});
    out.push_back(std::move(d));
  }
}

void PoisonousTreePass::run(const PlanContext& ctx,
                            std::vector<Diagnostic>& out) const {
  for (const auto& a : ctx.steps()) {
    const PlanStep& step = *a.step;
    if (step.kind != StepKind::kAcquisition || step.derived_from.empty()) {
      continue;
    }
    if (a.unreachable || a.defective) continue;  // flagged elsewhere

    bool all_parents_tainted = true;
    bool any_parent_tainted = false;
    for (const auto parent_id : step.derived_from) {
      const StepAnalysis* parent = ctx.find(parent_id);
      const bool pt = parent != nullptr && parent->tainted;
      all_parents_tainted = all_parents_tainted && pt;
      any_parent_tainted = any_parent_tainted || pt;
    }
    if (!any_parent_tainted) continue;

    if (a.tainted) {
      Diagnostic d = make(
          Severity::kError, rule(), step,
          "every source of this step is tainted; the evidence it yields "
          "would be suppressed as fruit of the poisonous tree");
      d.rationale.emplace_back(
          "the plan derives this step only from acquisitions that are "
          "themselves unlawful as planned");
      cite(d, {"silverthorne-1920", "wong-sun-1963"});
      out.push_back(std::move(d));
    } else if (all_parents_tainted) {
      // Saved by an annotation: surface the reliance as a note so the
      // team knows the claim must hold up at the hearing.
      Diagnostic d = make(
          Severity::kNote, rule(), step,
          step.independent_source
              ? "derives only from tainted steps but claims an independent "
                "lawful source; admissibility rests on proving that claim"
              : "derives only from tainted steps but claims inevitable "
                "discovery; admissibility rests on proving that claim");
      cite(d, step.independent_source
                  ? std::initializer_list<const char*>{"murray-1988"}
                  : std::initializer_list<const char*>{"nix-1984"});
      out.push_back(std::move(d));
    }
    // A mix of tainted and clean parents needs no diagnostic: one lawful
    // independent source keeps the evidence admissible.
  }
}

void StandingMismatchPass::run(const PlanContext& ctx,
                               std::vector<Diagnostic>& out) const {
  const std::string& suspect = ctx.plan().charged_suspect();
  if (suspect.empty()) return;
  for (const auto& a : ctx.steps()) {
    const PlanStep& step = *a.step;
    if (step.kind != StepKind::kAcquisition || !a.defective) continue;
    if (step.aggrieved_party.empty() || step.aggrieved_party == suspect) {
      continue;
    }

    std::ostringstream os;
    os << "the planned violation invades " << step.aggrieved_party
       << "'s rights, not " << suspect
       << "'s; suppression standing never attaches to the charged suspect";
    Diagnostic d = make(Severity::kWarning, rule(), step, os.str());
    d.rationale.emplace_back(
        "the evidence would likely survive the suspect's motion to "
        "suppress, but the acquisition is still unlawful as planned and "
        "exposes the team to liability to the aggrieved party");
    cite(d, {"rakas-1978"});
    out.push_back(std::move(d));
  }
}

void UnreachableStepPass::run(const PlanContext& ctx,
                              std::vector<Diagnostic>& out) const {
  for (const auto& a : ctx.steps()) {
    const PlanStep& step = *a.step;
    if (step.kind != StepKind::kAcquisition || !a.unreachable) continue;

    std::ostringstream os;
    os << "step derives from a step that cannot occur:";
    for (const auto parent_id : step.derived_from) {
      const StepAnalysis* parent = ctx.find(parent_id);
      if (parent_id == step.id) {
        os << " derives from itself;";
      } else if (parent == nullptr) {
        os << " parent " << parent_id << " is not in the plan;";
      } else if (!(parent->step->scheduled_at < step.scheduled_at)) {
        os << " parent '" << parent->step->name
           << "' is scheduled at or after this step;";
      } else if (parent->unreachable) {
        os << " parent '" << parent->step->name << "' is itself unreachable;";
      }
    }
    Diagnostic d = make(Severity::kError, rule(), step, os.str());
    d.rationale.emplace_back(
        "evidence cannot be derived from an acquisition that will not "
        "have happened; reorder the plan or fix the derivation edge");
    out.push_back(std::move(d));
  }
}

void ProofGapPass::run(const PlanContext& ctx,
                       std::vector<Diagnostic>& out) const {
  for (const auto& a : ctx.steps()) {
    const PlanStep& step = *a.step;
    if (step.kind != StepKind::kApplication) continue;
    const legal::StandardOfProof needed =
        legal::required_standard(step.requested);
    const legal::ProofAssessment have = legal::assess_proof(
        ctx.facts_before(step.scheduled_at), ctx.plan().category());
    if (legal::satisfies(have.standard, needed)) continue;

    std::ostringstream os;
    os << "application for a " << legal::to_string(step.requested)
       << " is scheduled while the fact set supports only "
       << legal::to_string(have.standard) << " (needs "
       << legal::to_string(needed) << ")";
    Diagnostic d = make(Severity::kError, rule(), step, os.str());
    d.rationale = have.notes;
    d.rationale.emplace_back(
        "facts yielded by tainted or unreachable steps are excluded from "
        "the showing; gather lawful facts before applying");
    d.citations = have.citations;
    cite(d, {"franks-1978", "gates-1983"});
    out.push_back(std::move(d));
  }
}

}  // namespace lexfor::lint
