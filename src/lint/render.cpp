#include "lint/render.h"

#include <sstream>

#include "legal/caselaw.h"
#include "legal/export.h"

namespace lexfor::lint {

std::string render_text(const LintReport& report) {
  std::ostringstream os;
  os << "plan '" << report.plan_title << "': " << report.error_count
     << (report.error_count == 1 ? " error, " : " errors, ")
     << report.warning_count
     << (report.warning_count == 1 ? " warning, " : " warnings, ")
     << report.note_count << (report.note_count == 1 ? " note" : " notes")
     << '\n';
  for (const auto& d : report.diagnostics) {
    os << to_string(d.severity) << ": " << d.rule << ": step " << d.step
       << " '" << d.step_name << "': " << d.message << '\n';
    for (const auto& r : d.rationale) {
      os << "    " << r << '\n';
    }
    for (const auto& id : d.citations) {
      if (auto c = legal::find_case(id)) {
        os << "  * " << legal::format_citation(*c) << '\n';
      } else {
        os << "  * " << id << '\n';
      }
    }
  }
  if (report.diagnostics.empty()) {
    os << "no defects found; every step is executable and admissible as "
          "planned\n";
  }
  return os.str();
}

namespace {

void append_string_array(std::ostringstream& os,
                         const std::vector<std::string>& items) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) os << ',';
    os << legal::json_escape(items[i]);
  }
  os << ']';
}

}  // namespace

std::string render_json(const LintReport& report) {
  std::ostringstream os;
  os << '{' << "\"plan\":" << legal::json_escape(report.plan_title)
     << ",\"errors\":" << report.error_count
     << ",\"warnings\":" << report.warning_count
     << ",\"notes\":" << report.note_count
     << ",\"clean\":" << (report.clean() ? "true" : "false")
     << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i != 0) os << ',';
    os << "{\"severity\":" << legal::json_escape(std::string(to_string(d.severity)))
       << ",\"rule\":" << legal::json_escape(d.rule)
       << ",\"step\":" << d.step.value()
       << ",\"step_name\":" << legal::json_escape(d.step_name)
       << ",\"message\":" << legal::json_escape(d.message)
       << ",\"rationale\":";
    append_string_array(os, d.rationale);
    os << ",\"citations\":";
    append_string_array(os, d.citations);
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace lexfor::lint
