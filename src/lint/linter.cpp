#include "lint/linter.h"

#include <algorithm>
#include <unordered_map>

#include "lint/passes.h"

namespace lexfor::lint {

PlanContext::PlanContext(const InvestigationPlan& plan,
                         const legal::BatchEvaluator& engine)
    : plan_(plan) {
  // Visit steps in the order execution would: by scheduled time, ties
  // broken by insertion order.
  std::vector<std::size_t> order(plan.steps().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plan.steps()[a].scheduled_at < plan.steps()[b].scheduled_at;
  });

  steps_.reserve(order.size());
  std::unordered_map<PlanStepId, const StepAnalysis*> done;

  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const PlanStep& step = plan.steps()[order[pos]];
    StepAnalysis a;
    a.step = &step;
    a.order = pos;

    if (step.kind == StepKind::kAcquisition) {
      a.determination = engine.evaluate(step.scenario);

      // Resolve the intended authority.
      if (step.uses_authority.valid()) {
        const PlanStep* app = plan.find(step.uses_authority);
        if (app != nullptr && app->kind == StepKind::kApplication) {
          a.authority = app;
          a.intended = app->requested;
          // Outside the instrument's validity window: before it can be
          // granted, or after it expires.
          a.authority_expired =
              step.scheduled_at < app->scheduled_at ||
              step.scheduled_at > app->scheduled_at + app->validity;
        }
      }

      const bool insufficient =
          a.determination.needs_process &&
          !legal::satisfies(a.intended, a.determination.required_process);
      // Relying on an instrument outside its window is as unlawful as
      // holding none, but only matters when process is needed at all.
      a.defective = insufficient ||
                    (a.determination.needs_process && a.authority_expired);

      // Reachability: every parent must exist, not be the step itself,
      // be scheduled strictly earlier, and itself be reachable.
      for (const auto parent_id : step.derived_from) {
        const auto it = done.find(parent_id);
        if (parent_id == step.id || it == done.end()) {
          a.unreachable = true;
          break;
        }
        const StepAnalysis& parent = *it->second;
        if (!(parent.step->scheduled_at < step.scheduled_at) ||
            parent.unreachable) {
          a.unreachable = true;
          break;
        }
      }

      // Static taint closure, mirroring legal/suppression.h: directly
      // unlawful steps are tainted; a derived step is tainted only when
      // EVERY parent is tainted (independent source keeps it alive)
      // and neither cleansing annotation applies.
      if (a.defective) {
        a.tainted = true;
      } else if (!step.derived_from.empty() && !a.unreachable) {
        bool all_parents_tainted = true;
        for (const auto parent_id : step.derived_from) {
          all_parents_tainted =
              all_parents_tainted && done.at(parent_id)->tainted;
        }
        a.tainted = all_parents_tainted && !step.independent_source &&
                    !step.inevitable_discovery;
      }
    }

    steps_.push_back(std::move(a));
    done.emplace(step.id, &steps_.back());
  }
}

const StepAnalysis* PlanContext::find(PlanStepId id) const {
  for (const auto& a : steps_) {
    if (a.step->id == id) return &a;
  }
  return nullptr;
}

std::vector<legal::Fact> PlanContext::facts_before(SimTime t) const {
  std::vector<legal::Fact> facts = plan_.initial_facts();
  for (const auto& a : steps_) {
    if (a.step->kind != StepKind::kAcquisition) continue;
    if (!(a.step->scheduled_at < t)) continue;
    if (a.tainted || a.unreachable) continue;
    facts.insert(facts.end(), a.step->yields_facts.begin(),
                 a.step->yields_facts.end());
  }
  return facts;
}

PlanLinter::PlanLinter() {
  passes_.push_back(std::make_unique<MissingProcessPass>());
  passes_.push_back(std::make_unique<ExpiredAuthorityPass>());
  passes_.push_back(std::make_unique<PoisonousTreePass>());
  passes_.push_back(std::make_unique<StandingMismatchPass>());
  passes_.push_back(std::make_unique<UnreachableStepPass>());
  passes_.push_back(std::make_unique<ProofGapPass>());
}

Status PlanLinter::register_pass(std::unique_ptr<LintPass> pass) {
  if (pass == nullptr) {
    return InvalidArgument("register_pass: pass must not be null");
  }
  for (const auto& existing : passes_) {
    if (existing->rule() == pass->rule()) {
      return AlreadyExists("register_pass: a pass with rule id '" +
                           std::string(pass->rule()) +
                           "' is already registered");
    }
  }
  passes_.push_back(std::move(pass));
  return Status::Ok();
}

LintReport PlanLinter::lint(const InvestigationPlan& plan) const {
  const PlanContext ctx(plan, engine_);

  LintReport report;
  report.plan_title = plan.title();
  for (const auto& pass : passes_) {
    pass->run(ctx, report.diagnostics);
  }

  // Deterministic order: offending step's scheduled position, then
  // severity (errors first), then rule id.
  std::unordered_map<PlanStepId, std::size_t> position;
  for (const auto& a : ctx.steps()) position.emplace(a.step->id, a.order);
  std::stable_sort(
      report.diagnostics.begin(), report.diagnostics.end(),
      [&](const Diagnostic& x, const Diagnostic& y) {
        const std::size_t px = position.count(x.step) ? position.at(x.step) : 0;
        const std::size_t py = position.count(y.step) ? position.at(y.step) : 0;
        if (px != py) return px < py;
        if (x.severity != y.severity) return x.severity > y.severity;
        return x.rule < y.rule;
      });

  for (const auto& d : report.diagnostics) {
    switch (d.severity) {
      case Severity::kError: ++report.error_count; break;
      case Severity::kWarning: ++report.warning_count; break;
      case Severity::kNote: ++report.note_count; break;
    }
  }
  return report;
}

}  // namespace lexfor::lint
