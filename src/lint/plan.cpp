#include "lint/plan.h"

namespace lexfor::lint {

PlanStepId InvestigationPlan::plan_application(std::string name,
                                               legal::ProcessKind kind,
                                               SimTime at,
                                               SimDuration validity) {
  PlanStep step;
  step.id = step_ids_.next();
  step.kind = StepKind::kApplication;
  step.name = std::move(name);
  step.scheduled_at = at;
  step.requested = kind;
  step.validity = validity;
  steps_.push_back(std::move(step));
  return steps_.back().id;
}

InvestigationPlan::StepBuilder InvestigationPlan::plan_acquisition(
    std::string name, legal::Scenario scenario, SimTime at) {
  PlanStep step;
  step.id = step_ids_.next();
  step.kind = StepKind::kAcquisition;
  step.name = std::move(name);
  step.scheduled_at = at;
  step.scenario = std::move(scenario);
  steps_.push_back(std::move(step));
  return StepBuilder{*this, steps_.size() - 1};
}

const PlanStep* InvestigationPlan::find(PlanStepId id) const {
  for (const auto& step : steps_) {
    if (step.id == id) return &step;
  }
  return nullptr;
}

}  // namespace lexfor::lint
