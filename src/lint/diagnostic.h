// Diagnostics emitted by plan-linting passes.
//
// Each diagnostic carries a stable rule id (the pass name — consumers
// key suppressions and regression baselines on it), a severity, the
// offending step, and a citation-backed rationale in the same style as
// legal::Determination.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"

namespace lexfor::lint {

enum class Severity : std::uint8_t {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};

[[nodiscard]] constexpr std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;       // stable pass id, e.g. "missing-process"
  PlanStepId step;        // the offending step
  std::string step_name;  // copied for self-contained rendering
  std::string message;    // one-line statement of the defect
  std::vector<std::string> rationale;  // supporting analysis lines
  std::vector<std::string> citations;  // case-law ids (legal::find_case)
};

struct LintReport {
  std::string plan_title;
  // Sorted: plan order of the offending step, then severity (errors
  // first), then rule id — deterministic for a given plan.
  std::vector<Diagnostic> diagnostics;
  std::size_t error_count = 0;
  std::size_t warning_count = 0;
  std::size_t note_count = 0;

  // A plan is clean when nothing would get its evidence suppressed;
  // warnings and notes do not fail a plan.
  [[nodiscard]] bool clean() const noexcept { return error_count == 0; }

  [[nodiscard]] bool has(std::string_view rule) const {
    return count(rule) != 0;
  }
  [[nodiscard]] std::size_t count(std::string_view rule) const {
    std::size_t n = 0;
    for (const auto& d : diagnostics) {
      if (d.rule == rule) ++n;
    }
    return n;
  }
  [[nodiscard]] const Diagnostic* first(std::string_view rule) const {
    for (const auto& d : diagnostics) {
      if (d.rule == rule) return &d;
    }
    return nullptr;
  }
};

}  // namespace lexfor::lint
