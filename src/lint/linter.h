// PlanLinter: static analysis over an InvestigationPlan.
//
// The linter evaluates every planned acquisition through the
// ComplianceEngine (the oracle the runtime uses, reached via the
// shared verdict cache of legal::BatchEvaluator), resolves intended
// authorities, computes reachability and a static fruit-of-the-
// poisonous-tree taint closure, and then runs an extensible registry of
// diagnostic passes over the precomputed context.  Nothing executes: no
// court is petitioned, no byte is acquired.

#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "legal/batch.h"
#include "legal/engine.h"
#include "lint/diagnostic.h"
#include "lint/plan.h"
#include "util/status.h"

namespace lexfor::lint {

// Per-step facts shared by all passes, computed once per lint run.
struct StepAnalysis {
  const PlanStep* step = nullptr;
  std::size_t order = 0;  // position in scheduled order

  // Acquisition steps: the engine's determination for the scenario.
  legal::Determination determination;
  // Resolved intended authority (the referenced application step), or
  // nullptr when none is planned / the reference is dangling.
  const PlanStep* authority = nullptr;
  legal::ProcessKind intended = legal::ProcessKind::kNone;

  // The planned acquisition would itself be unlawful: the intended
  // instrument is weaker than required, or used outside its window.
  bool defective = false;
  bool authority_expired = false;
  // Static taint (fruit of the poisonous tree) per suppression.h rules.
  bool tainted = false;
  // The step derives (transitively) from a step that cannot occur:
  // unknown parent, self-derivation, or a parent scheduled later.
  bool unreachable = false;
};

// Precomputed view of a plan.  Steps appear in scheduled order
// (scheduled_at, then insertion order), which is the order execution
// would visit them.
class PlanContext {
 public:
  PlanContext(const InvestigationPlan& plan,
              const legal::BatchEvaluator& engine);

  [[nodiscard]] const InvestigationPlan& plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] const std::vector<StepAnalysis>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] const StepAnalysis* find(PlanStepId id) const;

  // Facts available strictly before `t`: the plan's initial facts plus
  // the yields of earlier acquisitions that are neither tainted nor
  // unreachable (facts from suppressible evidence cannot support a
  // process application).
  [[nodiscard]] std::vector<legal::Fact> facts_before(SimTime t) const;

 private:
  const InvestigationPlan& plan_;
  std::vector<StepAnalysis> steps_;
};

// One diagnostic pass.  Passes are stateless; `rule()` is the stable id
// stamped on every diagnostic the pass emits.
class LintPass {
 public:
  virtual ~LintPass() = default;
  [[nodiscard]] virtual std::string_view rule() const noexcept = 0;
  virtual void run(const PlanContext& ctx,
                   std::vector<Diagnostic>& out) const = 0;
};

class PlanLinter {
 public:
  // Constructs a linter with the six built-in passes registered.
  PlanLinter();

  // Adds a custom pass; runs after the built-ins.  Rule ids key
  // suppressions and regression baselines, so they must be unique:
  // registering a pass whose rule() collides with a built-in or an
  // earlier custom pass fails with kAlreadyExists (a null pass is
  // kInvalidArgument) and leaves the registry unchanged.
  Status register_pass(std::unique_ptr<LintPass> pass);

  [[nodiscard]] const std::vector<std::unique_ptr<LintPass>>& passes()
      const noexcept {
    return passes_;
  }

  // Runs every registered pass and returns the sorted report.
  [[nodiscard]] LintReport lint(const InvestigationPlan& plan) const;

 private:
  // Evaluations go through the process-wide verdict cache, so linting
  // the same plan (or re-linting after an edit that leaves most steps
  // untouched) stops re-deriving identical determinations — and the
  // runtime's later Investigation::acquire calls hit the same entries.
  legal::BatchEvaluator engine_;
  std::vector<std::unique_ptr<LintPass>> passes_;
};

}  // namespace lexfor::lint
