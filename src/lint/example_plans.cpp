#include "lint/example_plans.h"

namespace lexfor::lint {

namespace {

constexpr SimTime day(double d) { return SimTime::from_sec(d * 24 * 3600.0); }
constexpr SimDuration days(double d) {
  return SimDuration::from_sec(d * 24 * 3600.0);
}

}  // namespace

InvestigationPlan clean_quickstart_plan() {
  using namespace legal;

  InvestigationPlan plan("quickstart surveillance plan",
                         CrimeCategory::kIntrusion);
  plan.charging("Mallory")
      .with_fact({FactKind::kIpAddressLinked, 2.0,
                  "attack traffic resolved to Mallory's IP"})
      .with_fact({FactKind::kSubscriberIdentified, 2.0,
                  "ISP matched the IP to Mallory's account"});

  const PlanStepId pen_trap = plan.plan_application(
      "apply for a pen/trap order", ProcessKind::kCourtOrder, day(0));

  const PlanStepId capture =
      plan.plan_acquisition("header-only capture at the ISP",
                            Scenario{}
                                .named("header-only capture")
                                .by(ActorKind::kLawEnforcement)
                                .acquiring(DataKind::kAddressing)
                                .located(DataState::kInTransit)
                                .when(Timing::kRealTime),
                            day(1))
          .using_authority(pen_trap)
          .yields({FactKind::kAccountLinked, 0.0,
                   "captured headers tie the account to the intrusion"});

  plan.plan_acquisition("observe the public overlay",
                        Scenario{}
                            .named("public overlay observation")
                            .by(ActorKind::kLawEnforcement)
                            .acquiring(DataKind::kAddressing)
                            .located(DataState::kPublicVenue)
                            .when(Timing::kRealTime)
                            .exposed_publicly(),
                        day(1));

  const PlanStepId subpoena = plan.plan_application(
      "apply for a subpoena", ProcessKind::kSubpoena, day(2));

  plan.plan_acquisition("subscriber records from the provider",
                        Scenario{}
                            .named("subscriber lookup")
                            .by(ActorKind::kLawEnforcement)
                            .acquiring(DataKind::kSubscriberRecords)
                            .located(DataState::kStoredAtProvider)
                            .when(Timing::kStored)
                            .at_provider(ProviderClass::kEcs),
                        day(3))
      .using_authority(subpoena)
      .derived({capture});

  return plan;
}

InvestigationPlan defective_wiretap_plan() {
  using namespace legal;

  InvestigationPlan plan("Operation Glass Harbor",
                         CrimeCategory::kIntrusion);
  plan.charging("Mallory").with_fact(
      {FactKind::kAnonymousTip, 1.0, "anonymous tip naming Mallory"});

  // proof-gap: a Title III application needs probable cause plus
  // necessity; an anonymous tip supports mere suspicion.
  plan.plan_application("apply for a Title III order",
                        ProcessKind::kWiretapOrder, day(0), days(30));

  // missing-process: full-content interception with no process at all.
  const PlanStepId tap =
      plan.plan_acquisition("warrantless wiretap of Mallory's broadband",
                            Scenario{}
                                .named("full-content interception")
                                .by(ActorKind::kLawEnforcement)
                                .acquiring(DataKind::kContent)
                                .located(DataState::kInTransit)
                                .when(Timing::kRealTime),
                            day(1))
          .yields({FactKind::kIpAddressLinked, 0.0,
                   "intercepted sessions pin the attack to Mallory's IP"});

  // The examination scenario: mining data already in hand needs no new
  // process, so any defect here comes from the derivation, not the step.
  const Scenario examination = Scenario{}
                                   .named("examination of held data")
                                   .by(ActorKind::kLawEnforcement)
                                   .acquiring(DataKind::kContent)
                                   .located(DataState::kOnDevice)
                                   .when(Timing::kStored)
                                   .previously_acquired();

  // poisonous-tree (error): derives only from the tainted tap.
  plan.plan_acquisition("transcribe the intercepted sessions", examination,
                        day(2))
      .derived({tap});

  // poisonous-tree (note): same derivation, but the team claims the
  // provider can produce the sessions independently.
  plan.plan_acquisition("recover the same sessions from the provider",
                        examination, day(2))
      .derived({tap})
      .independent_source();

  // The 2703(d) application also lacks proof: the tip alone is left once
  // the tainted tap's yields are excluded.
  const PlanStepId order = plan.plan_application(
      "apply for a 2703(d) order", ProcessKind::kCourtOrder, day(3), days(14));

  // expired-authority + standing-mismatch: the pull happens three days
  // after the order lapses and invades Chen's rights, not Mallory's.
  plan.plan_acquisition("pull Chen's transactional logs at the ISP",
                        Scenario{}
                            .named("transactional log pull")
                            .by(ActorKind::kLawEnforcement)
                            .acquiring(DataKind::kTransactionalRecords)
                            .located(DataState::kStoredAtProvider)
                            .when(Timing::kStored)
                            .at_provider(ProviderClass::kEcs),
                        day(20))
      .using_authority(order)
      .aggrieves("Chen");

  // unreachable-step: the correlation derives from the final report,
  // which is scheduled five days later.
  const PlanStepId report = plan.plan_acquisition(
      "assemble the full forensic report", examination, day(30));
  plan.plan_acquisition("correlate logs with the final report", examination,
                        day(25))
      .derived({report});

  return plan;
}

}  // namespace lexfor::lint
