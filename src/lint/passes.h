// The built-in diagnostic passes.
//
// Each pass mirrors a way real evidence dies in court:
//
//   missing-process    the step's intended authority is weaker than the
//                      instrument the compliance engine requires
//   expired-authority  the step is scheduled outside its instrument's
//                      validity window (Sgro: a warrant is not a
//                      standing license)
//   poisonous-tree     static taint closure over derived_from edges,
//                      honoring independent-source / inevitable-
//                      discovery, mirroring legal/suppression.h
//   standing-mismatch  the defect invades a third party's rights, so
//                      suppression standing never attaches to the
//                      charged suspect (Rakas)
//   unreachable-step   derivation from a step that cannot occur
//                      (unknown, self-referential, or scheduled later)
//   proof-gap          a process application is scheduled before the
//                      available fact set supports the required
//                      standard of proof

#pragma once

#include "lint/linter.h"

namespace lexfor::lint {

inline constexpr std::string_view kRuleMissingProcess = "missing-process";
inline constexpr std::string_view kRuleExpiredAuthority = "expired-authority";
inline constexpr std::string_view kRulePoisonousTree = "poisonous-tree";
inline constexpr std::string_view kRuleStandingMismatch = "standing-mismatch";
inline constexpr std::string_view kRuleUnreachableStep = "unreachable-step";
inline constexpr std::string_view kRuleProofGap = "proof-gap";

class MissingProcessPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view rule() const noexcept override {
    return kRuleMissingProcess;
  }
  void run(const PlanContext& ctx, std::vector<Diagnostic>& out) const override;
};

class ExpiredAuthorityPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view rule() const noexcept override {
    return kRuleExpiredAuthority;
  }
  void run(const PlanContext& ctx, std::vector<Diagnostic>& out) const override;
};

class PoisonousTreePass final : public LintPass {
 public:
  [[nodiscard]] std::string_view rule() const noexcept override {
    return kRulePoisonousTree;
  }
  void run(const PlanContext& ctx, std::vector<Diagnostic>& out) const override;
};

class StandingMismatchPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view rule() const noexcept override {
    return kRuleStandingMismatch;
  }
  void run(const PlanContext& ctx, std::vector<Diagnostic>& out) const override;
};

class UnreachableStepPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view rule() const noexcept override {
    return kRuleUnreachableStep;
  }
  void run(const PlanContext& ctx, std::vector<Diagnostic>& out) const override;
};

class ProofGapPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view rule() const noexcept override {
    return kRuleProofGap;
  }
  void run(const PlanContext& ctx, std::vector<Diagnostic>& out) const override;
};

}  // namespace lexfor::lint
