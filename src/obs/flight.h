// Flight recorder: post-mortem dump of the last N events + metrics.
//
// The ring already keeps the recent past per thread; the flight
// recorder turns that into a file the moment something goes wrong.
// Once armed (configure(), or the LEXFOR_FLIGHT_PATH environment
// variable at first use), a dump is triggered by any kError-level
// trace event (hooked in Tracer::emit, after the event lands in the
// ring so the dump contains it), by check::DifferentialChecker
// violations, or explicitly via obs::dump_flight_record().
//
// Dump format is JSONL, appended per dump so repeated incidents stack
// in one file:
//   {"type":"flight","reason":"...","wall_ns":...,"events":N}
//   {"type":"event", <JsonlSink line body>}     x N, time-ordered
//   {"type":"metrics","snapshot":{...}}          obs::Snapshot JSON
// Every line greps/jq's like a live JSONL trace.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace lexfor::obs {

struct FlightRecorderConfig {
  std::string path = "lexfor_flight.jsonl";
  // Newest events kept per dump (merged across all ring shards).
  std::size_t last_events = 256;
  // Dump automatically when a kError-level event is emitted.
  bool dump_on_error = true;
};

class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Arms the recorder; replaces any previous configuration.
  void configure(FlightRecorderConfig cfg);
  void disarm();
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string path() const;

  // Dumps written since process start (successful ones only).
  [[nodiscard]] std::uint64_t dumps() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }

  // Writes one dump; returns false when disarmed, re-entered, or the
  // file cannot be opened.  Bumps the obs.flight.dumps counter on
  // success.
  bool dump(std::string_view reason);

  // Hook called by Tracer::emit for kError events.
  void on_error_event();

 private:
  mutable std::mutex mu_;
  FlightRecorderConfig cfg_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> dumps_{0};
};

// Process-wide recorder; leaked on purpose like obs::tracer().  On
// first use, arms itself from the LEXFOR_FLIGHT_PATH environment
// variable if set.
[[nodiscard]] FlightRecorder& flight_recorder();

// Convenience: flight_recorder().dump(reason).
bool dump_flight_record(std::string_view reason);

}  // namespace lexfor::obs
