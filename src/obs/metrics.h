// Metrics registry: counters, gauges, fixed-bucket histograms.
//
// Metrics answer "how much / how fast" where traces answer "what
// happened, in what order".  All update paths are wait-free atomics so
// the registry can be shared across threads (the ThreadSanitizer stage
// in tools/run_static_analysis.sh gates this); registration takes a
// mutex but returns stable references, so call sites cache them (the
// LEXFOR_OBS_COUNTER_* macros do this with a function-local static) and
// pay only the atomic op afterwards.  Histograms use fixed bucket
// bounds and report p50/p95/p99 by linear interpolation inside the
// containing bucket — bounded error, zero per-sample allocation.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lexfor::obs {

namespace detail {
// Shared percentile estimator over fixed-bucket counts: linear
// interpolation inside the containing bucket, with both interpolation
// endpoints clamped to the observed [min, max] so the estimate can
// never leave the sampled range — in particular the overflow (last)
// bucket, which has no upper bound, interpolates toward the observed
// max instead of extrapolating past it.  Used by the live Histogram
// and by HistogramSample (obs/snapshot.h) so the two can never drift.
[[nodiscard]] double percentile_from_buckets(
    const std::vector<std::int64_t>& bounds,
    const std::vector<std::uint64_t>& buckets, std::uint64_t count,
    std::int64_t observed_min, std::int64_t observed_max, double p);
}  // namespace detail

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  // `bounds` are strictly increasing bucket upper bounds; samples above
  // the last bound land in an implicit overflow bucket.
  Histogram(std::string name, std::vector<std::int64_t> bounds);

  void record(std::int64_t sample) noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  // min()/max() report 0 for an empty histogram: the INT64_MAX /
  // INT64_MIN seed sentinels are an implementation detail and must
  // never surface in reports or JSON.
  [[nodiscard]] std::int64_t min() const noexcept {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return buckets_.size();
  }

  // Estimated value at percentile p in [0,100]; clamps to observed
  // min/max so estimates never leave the sampled range.
  [[nodiscard]] double percentile(double p) const;

  // Reasonable default for microsecond-scale latencies: 1..5e6 us in a
  // 1-2-5 ladder.
  [[nodiscard]] static std::vector<std::int64_t> default_latency_bounds_us();

  void reset() noexcept;

 private:
  std::string name_;
  std::vector<std::int64_t> bounds_;
  std::deque<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

// Point-in-time copies of one instrument each, used by obs::Snapshot
// and anything else that wants a consistent read without holding
// references into the live registry.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Same clamped estimator as the live Histogram::percentile.
  [[nodiscard]] double percentile(double p) const {
    return detail::percentile_from_buckets(bounds, buckets, count, min, max,
                                           p);
  }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Lookup-or-create; returned references stay valid for the registry's
  // lifetime (instruments live in deques).
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<std::int64_t> bounds = {});

  // Point-in-time copies of every instrument, sorted by name.  Each
  // instrument is read atomically field-by-field (the registry stays
  // live), which is the same consistency the renderers below provide.
  [[nodiscard]] std::vector<CounterSample> counter_samples() const;
  [[nodiscard]] std::vector<GaugeSample> gauge_samples() const;
  [[nodiscard]] std::vector<HistogramSample> histogram_samples() const;

  // Renders every instrument, sorted by name within each kind.
  void to_text(std::ostream& os) const;
  void to_json(std::ostream& os) const;

  // Zeroes counters/gauges and drops histograms' samples; instruments
  // themselves (and cached references) stay registered.
  void reset();

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

// The process-wide registry used by the LEXFOR_OBS_* macros; leaked on
// purpose like obs::tracer().
[[nodiscard]] MetricsRegistry& metrics();

}  // namespace lexfor::obs
