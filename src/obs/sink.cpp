#include "obs/sink.h"

#include <cstdio>

namespace lexfor::obs {

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string args_to_json(std::string_view args) {
  std::string out;
  std::size_t pos = 0;
  bool first = true;
  while (pos < args.size()) {
    std::size_t comma = args.find(',', pos);
    if (comma == std::string_view::npos) comma = args.size();
    const std::string_view pair = args.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    if (!first) out += ',';
    first = false;
    const std::size_t eq = pair.find('=');
    out += '"';
    if (eq == std::string_view::npos) {
      out += "note\":\"";
      append_json_escaped(out, pair);
    } else {
      append_json_escaped(out, pair.substr(0, eq));
      out += "\":\"";
      append_json_escaped(out, pair.substr(eq + 1));
    }
    out += '"';
  }
  return out;
}

void TextSink::write(const TraceEvent& ev) {
  char head[96];
  if (ev.has_sim_time()) {
    std::snprintf(head, sizeof head, "[wall %10.3fus | sim %10.3fus]",
                  static_cast<double>(ev.wall_ns) / 1e3,
                  static_cast<double>(ev.sim_us));
  } else {
    std::snprintf(head, sizeof head, "[wall %10.3fus |       ------ ]",
                  static_cast<double>(ev.wall_ns) / 1e3);
  }
  os_ << head << ' ' << static_cast<char>(ev.phase) << ' '
      << to_string(ev.level) << ' ' << ev.category << '/' << ev.name;
  if (ev.phase == Phase::kCounter) os_ << " = " << ev.value;
  if (ev.phase == Phase::kEnd) {
    os_ << " (" << static_cast<double>(ev.value) / 1e3 << "us)";
  }
  if (!ev.args.empty()) os_ << " {" << ev.args << '}';
  os_ << '\n';
}

namespace {

// Shared JSON object body used by JsonlSink and ChromeTraceSink args.
void append_event_object(std::string& out, const TraceEvent& ev,
                         double ts_us) {
  char buf[64];
  out += "{\"name\":\"";
  append_json_escaped(out, ev.name);
  out += "\",\"cat\":\"";
  append_json_escaped(out, ev.category);
  out += "\",\"ph\":\"";
  out += static_cast<char>(ev.phase);
  out += "\",\"ts\":";
  std::snprintf(buf, sizeof buf, "%.3f", ts_us);
  out += buf;
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(ev.tid + 1);
  if (ev.span_id != 0) {
    out += ",\"id\":\"0x";
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(ev.span_id));
    out += buf;
    out += '"';
  }
  out += ",\"args\":{";
  bool first = true;
  if (ev.phase == Phase::kCounter) {
    out += "\"value\":";
    out += std::to_string(ev.value);
    first = false;
  }
  if (ev.has_sim_time()) {
    if (!first) out += ',';
    out += "\"sim_us\":";
    out += std::to_string(ev.sim_us);
    first = false;
  }
  const std::string extra = args_to_json(ev.args);
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += "}}";
}

}  // namespace

void append_event_jsonl(std::string& out, const TraceEvent& ev) {
  // JSONL keeps the raw dual clocks rather than a rendered ts.
  out += "{\"wall_ns\":";
  out += std::to_string(ev.wall_ns);
  if (ev.has_sim_time()) {
    out += ",\"sim_us\":";
    out += std::to_string(ev.sim_us);
  }
  if (ev.seq != 0) {
    out += ",\"seq\":";
    out += std::to_string(ev.seq);
  }
  out += ",\"level\":\"";
  out += to_string(ev.level);
  out += "\",\"event\":";
  append_event_object(out, ev, static_cast<double>(ev.wall_ns) / 1e3);
  out += '}';
}

void JsonlSink::write(const TraceEvent& ev) {
  std::string line;
  line.reserve(160);
  append_event_jsonl(line, ev);
  line += '\n';
  os_ << line;
}

double ChromeTraceSink::timestamp_us(const TraceEvent& ev) {
  if (base_ == TimeBase::kWall) {
    return static_cast<double>(ev.wall_ns) / 1e3;
  }
  if (ev.has_sim_time() && ev.sim_us > last_sim_us_) last_sim_us_ = ev.sim_us;
  return static_cast<double>(ev.has_sim_time() ? ev.sim_us : last_sim_us_);
}

void ChromeTraceSink::write(const TraceEvent& ev) {
  if (finished_) return;
  std::string out;
  out.reserve(192);
  if (!open_) {
    open_ = true;
    // Array opener plus a metadata record naming the process.
    out += "[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
           "\"args\":{\"name\":\"lexforensica\"}}";
  }
  out += ",\n";
  append_event_object(out, ev, timestamp_us(ev));
  os_ << out;
}

void ChromeTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  if (!open_) os_ << '[';  // empty trace is still a valid document
  os_ << "]\n";
  os_.flush();
}

}  // namespace lexfor::obs
