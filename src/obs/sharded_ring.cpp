#include "obs/sharded_ring.h"

#include <algorithm>
#include <utility>

namespace lexfor::obs {
namespace {

std::uint64_t next_ring_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread shard cache: (ring id -> shard) pairs, looked up linearly
// (a thread touches a handful of rings; the process-wide tracer's ring
// is almost always entry 0).  Keyed by the ring's process-unique id,
// never by address, so an entry for a destroyed ring can never alias a
// newer one — stale entries are simply never matched again.
struct ShardCacheEntry {
  std::uint64_t ring_id;
  EventRing* shard;
};

thread_local std::vector<ShardCacheEntry> t_shard_cache;

}  // namespace

ShardedEventRing::ShardedEventRing(std::size_t shard_capacity)
    : id_(next_ring_id()),
      shard_capacity_(shard_capacity == 0 ? 1 : shard_capacity) {}

EventRing& ShardedEventRing::shard_for_this_thread() {
  for (const ShardCacheEntry& entry : t_shard_cache) {
    if (entry.ring_id == id_) return *entry.shard;
  }
  EventRing* shard = nullptr;
  {
    const std::scoped_lock lock(register_mu_);
    shard = &shards_.emplace_back(shard_capacity_);
  }
  t_shard_cache.push_back(ShardCacheEntry{id_, shard});
  return *shard;
}

void ShardedEventRing::register_this_thread() {
  (void)shard_for_this_thread();
}

void ShardedEventRing::push(TraceEvent ev) {
  ev.seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  shard_for_this_thread().push(std::move(ev));
}

void sort_time_ordered(std::vector<TraceEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns < b.wall_ns;
              return a.seq < b.seq;
            });
}

std::vector<TraceEvent> ShardedEventRing::snapshot() const {
  std::vector<TraceEvent> out;
  for_each_shard([&out](const EventRing& s) {
    for (TraceEvent& ev : s.snapshot()) out.push_back(std::move(ev));
  });
  sort_time_ordered(out);
  return out;
}

std::vector<TraceEvent> ShardedEventRing::drain() {
  std::vector<TraceEvent> out;
  {
    const std::scoped_lock lock(register_mu_);
    for (EventRing& s : shards_) (void)s.drain(out);
  }
  sort_time_ordered(out);
  return out;
}

std::size_t ShardedEventRing::size() const {
  std::size_t total = 0;
  for_each_shard([&total](const EventRing& s) { total += s.size(); });
  return total;
}

std::uint64_t ShardedEventRing::pushed() const {
  std::uint64_t total = 0;
  for_each_shard([&total](const EventRing& s) { total += s.pushed(); });
  return total;
}

std::uint64_t ShardedEventRing::drained() const {
  std::uint64_t total = 0;
  for_each_shard([&total](const EventRing& s) { total += s.drained(); });
  return total;
}

std::uint64_t ShardedEventRing::dropped() const {
  std::uint64_t total = 0;
  for_each_shard([&total](const EventRing& s) { total += s.dropped(); });
  return total;
}

std::size_t ShardedEventRing::shard_count() const {
  const std::scoped_lock lock(register_mu_);
  return shards_.size();
}

const EventRing& ShardedEventRing::shard(std::size_t i) const {
  const std::scoped_lock lock(register_mu_);
  return shards_[i];
}

void ShardedEventRing::clear() {
  const std::scoped_lock lock(register_mu_);
  for (EventRing& s : shards_) s.clear();
}

}  // namespace lexfor::obs
