#include "obs/profile.h"

#include <algorithm>

namespace lexfor::obs {

ProfileSite& ProfileRegistry::site(std::string_view name) {
  const std::scoped_lock lock(mu_);
  for (auto& s : sites_) {
    if (s.name() == name) return s;
  }
  return sites_.emplace_back(std::string(name));
}

std::vector<ProfileSample> ProfileRegistry::samples() const {
  std::vector<ProfileSample> out;
  {
    const std::scoped_lock lock(mu_);
    out.reserve(sites_.size());
    for (const auto& s : sites_) {
      out.push_back(ProfileSample{s.name(), s.count(), s.total_ns(),
                                  s.min_ns(), s.max_ns()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileSample& a, const ProfileSample& b) {
              return a.name < b.name;
            });
  return out;
}

void ProfileRegistry::reset() {
  const std::scoped_lock lock(mu_);
  for (auto& s : sites_) s.reset();
}

ProfileRegistry& profiler() {
  // Leaked on purpose; see obs::tracer().
  static ProfileRegistry* const instance = new ProfileRegistry();
  return *instance;
}

}  // namespace lexfor::obs
