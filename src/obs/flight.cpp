#include "obs/flight.h"

#include <cstdlib>
#include <fstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"

namespace lexfor::obs {
namespace {

// Re-entrancy latch: a dump must never trigger another dump on the
// same thread (e.g. if a sink attached to the tracer ever emits a
// kError event while we hold the recorder mutex).
thread_local bool t_in_dump = false;

}  // namespace

void FlightRecorder::configure(FlightRecorderConfig cfg) {
  const std::scoped_lock lock(mu_);
  cfg_ = std::move(cfg);
  if (cfg_.last_events == 0) cfg_.last_events = 1;
  armed_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disarm() {
  armed_.store(false, std::memory_order_relaxed);
}

std::string FlightRecorder::path() const {
  const std::scoped_lock lock(mu_);
  return cfg_.path;
}

bool FlightRecorder::dump(std::string_view reason) {
  if (!armed() || t_in_dump) return false;
  t_in_dump = true;
  bool ok = false;
  {
    const std::scoped_lock lock(mu_);
    // Non-consuming snapshot of the merged, time-ordered recent past;
    // keep only the newest last_events.
    std::vector<TraceEvent> events = tracer().ring().snapshot();
    if (events.size() > cfg_.last_events) {
      events.erase(events.begin(),
                   events.end() - static_cast<std::ptrdiff_t>(
                                      cfg_.last_events));
    }
    std::ofstream os(cfg_.path, std::ios::app);
    if (os) {
      std::string line;
      line.reserve(256);
      line += "{\"type\":\"flight\",\"reason\":\"";
      append_json_escaped(line, reason);
      line += "\",\"wall_ns\":";
      line += std::to_string(tracer().wall_now_ns());
      line += ",\"events\":";
      line += std::to_string(events.size());
      line += "}\n";
      for (const TraceEvent& ev : events) {
        std::string body;
        body.reserve(192);
        append_event_jsonl(body, ev);
        line += "{\"type\":\"event\",";
        line.append(body, 1, std::string::npos);  // strip the leading '{'
        line += '\n';
      }
      line += "{\"type\":\"metrics\",\"snapshot\":";
      Snapshot::capture().append_json(line);
      line += "}\n";
      os << line;
      ok = static_cast<bool>(os);
    }
  }
  if (ok) {
    dumps_.fetch_add(1, std::memory_order_relaxed);
    metrics().counter("obs.flight.dumps").add(1);
  }
  t_in_dump = false;
  return ok;
}

void FlightRecorder::on_error_event() {
  if (!armed()) return;
  bool dump_on_error = false;
  {
    const std::scoped_lock lock(mu_);
    dump_on_error = cfg_.dump_on_error;
  }
  if (dump_on_error) (void)dump("error-event");
}

FlightRecorder& flight_recorder() {
  // Leaked on purpose; see obs::tracer().  Env auto-arm happens once,
  // at first use, so headless runs can capture crashes with zero code.
  static FlightRecorder* const instance = [] {
    auto* recorder = new FlightRecorder();
    if (const char* path = std::getenv("LEXFOR_FLIGHT_PATH");
        path != nullptr && *path != '\0') {
      FlightRecorderConfig cfg;
      cfg.path = path;
      recorder->configure(std::move(cfg));
    }
    return recorder;
  }();
  return *instance;
}

bool dump_flight_record(std::string_view reason) {
  return flight_recorder().dump(reason);
}

}  // namespace lexfor::obs
