#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "obs/sink.h"  // append_json_escaped
#include "obs/tracer.h"

namespace lexfor::obs {
namespace {

// --- Prometheus naming -------------------------------------------------
// Instrument names use dotted lowercase ("legal.verdict.count") and may
// carry a literal label suffix ("obs.ring.dropped{shard=\"0\"}").  The
// exposition name is the part before '{' with every character outside
// [A-Za-z0-9_:] mapped to '_'; the label braces pass through verbatim.

std::string prom_family(std::string_view raw) {
  const std::size_t brace = raw.find('{');
  const std::string_view name =
      brace == std::string_view::npos ? raw : raw.substr(0, brace);
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

// Label body (without braces) carried in the instrument name, if any.
std::string_view prom_labels(std::string_view raw) {
  const std::size_t brace = raw.find('{');
  if (brace == std::string_view::npos) return {};
  std::string_view body = raw.substr(brace + 1);
  if (!body.empty() && body.back() == '}') body.remove_suffix(1);
  return body;
}

std::string prom_sample_name(std::string_view raw) {
  std::string out = prom_family(raw);
  const std::string_view labels = prom_labels(raw);
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  return out;
}

void emit_type_line(std::ostream& os, const std::string& family,
                    std::string_view kind, std::string& last_family) {
  if (family == last_family) return;
  last_family = family;
  os << "# TYPE " << family << ' ' << kind << '\n';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

Snapshot Snapshot::capture() {
  Tracer& t = tracer();
  t.publish_ring_metrics();
  Snapshot s = capture(metrics(), &profiler());
  s.wall_ns = t.wall_now_ns();
  s.events_emitted = t.events_emitted();
  ShardedEventRing& ring = t.ring();
  const std::size_t shards = ring.shard_count();
  s.ring.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    const EventRing& shard = ring.shard(i);
    s.ring.push_back(RingShardStats{i, shard.pushed(), shard.drained(),
                                    shard.dropped(), shard.size()});
  }
  return s;
}

Snapshot Snapshot::capture(const MetricsRegistry& reg,
                           const ProfileRegistry* prof) {
  Snapshot s;
  s.counters = reg.counter_samples();
  s.gauges = reg.gauge_samples();
  s.histograms = reg.histogram_samples();
  if (prof != nullptr) s.profile = prof->samples();
  return s;
}

Snapshot Snapshot::since(const Snapshot& prev) const {
  Snapshot out;
  out.wall_ns = wall_ns;
  out.events_emitted = events_emitted >= prev.events_emitted
                           ? events_emitted - prev.events_emitted
                           : events_emitted;

  // All sample vectors are sorted by name, so each lookup is a binary
  // search in the previous snapshot.
  const auto find_prev = [](const auto& items, const std::string& name) ->
      typename std::decay_t<decltype(items)>::const_pointer {
    auto it = std::lower_bound(
        items.begin(), items.end(), name,
        [](const auto& item, const std::string& n) { return item.name < n; });
    if (it == items.end() || it->name != name) return nullptr;
    return &*it;
  };

  out.counters.reserve(counters.size());
  for (const CounterSample& c : counters) {
    const CounterSample* p = find_prev(prev.counters, c.name);
    const std::uint64_t base = (p != nullptr && p->value <= c.value)
                                   ? p->value
                                   : 0;  // reset guard
    out.counters.push_back(CounterSample{c.name, c.value - base});
  }

  out.gauges = gauges;  // gauges are levels, not rates: report current

  out.histograms.reserve(histograms.size());
  for (const HistogramSample& h : histograms) {
    const HistogramSample* p = find_prev(prev.histograms, h.name);
    const bool deltable = p != nullptr && p->count <= h.count &&
                          p->bounds == h.bounds &&
                          p->buckets.size() == h.buckets.size();
    if (!deltable) {
      out.histograms.push_back(h);
      continue;
    }
    HistogramSample d = h;  // keep current observed min/max
    d.count = h.count - p->count;
    d.sum = h.sum - p->sum;
    for (std::size_t i = 0; i < d.buckets.size(); ++i) {
      d.buckets[i] =
          p->buckets[i] <= h.buckets[i] ? h.buckets[i] - p->buckets[i] : 0;
    }
    out.histograms.push_back(std::move(d));
  }

  out.profile.reserve(profile.size());
  for (const ProfileSample& s : profile) {
    const ProfileSample* p = find_prev(prev.profile, s.name);
    ProfileSample d = s;  // min/max stay at the current reading
    if (p != nullptr && p->count <= s.count && p->total_ns <= s.total_ns) {
      d.count = s.count - p->count;
      d.total_ns = s.total_ns - p->total_ns;
    }
    out.profile.push_back(std::move(d));
  }

  out.ring.reserve(ring.size());
  for (const RingShardStats& r : ring) {
    RingShardStats d = r;  // size is a level: report current
    for (const RingShardStats& p : prev.ring) {
      if (p.shard != r.shard) continue;
      if (p.pushed <= r.pushed) d.pushed = r.pushed - p.pushed;
      if (p.drained <= r.drained) d.drained = r.drained - p.drained;
      if (p.dropped <= r.dropped) d.dropped = r.dropped - p.dropped;
      break;
    }
    out.ring.push_back(d);
  }
  return out;
}

void Snapshot::to_prometheus(std::ostream& os) const {
  std::string last_family;
  for (const CounterSample& c : counters) {
    const std::string family = prom_family(c.name);
    emit_type_line(os, family, "counter", last_family);
    os << prom_sample_name(c.name) << ' ' << c.value << '\n';
  }
  for (const GaugeSample& g : gauges) {
    const std::string family = prom_family(g.name);
    emit_type_line(os, family, "gauge", last_family);
    os << prom_sample_name(g.name) << ' ' << g.value << '\n';
  }
  for (const HistogramSample& h : histograms) {
    const std::string family = prom_family(h.name);
    emit_type_line(os, family, "histogram", last_family);
    const std::string_view labels = prom_labels(h.name);
    const auto bucket_line = [&](std::string_view le, std::uint64_t cum) {
      os << family << "_bucket{";
      if (!labels.empty()) os << labels << ',';
      os << "le=\"" << le << "\"} " << cum << '\n';
    };
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      bucket_line(std::to_string(h.bounds[i]), cumulative);
    }
    bucket_line("+Inf", h.count);
    os << family << "_sum";
    if (!labels.empty()) os << '{' << labels << '}';
    os << ' ' << h.sum << '\n';
    os << family << "_count";
    if (!labels.empty()) os << '{' << labels << '}';
    os << ' ' << h.count << '\n';
  }
  if (!profile.empty()) {
    os << "# TYPE lexfor_profile_hits counter\n";
    for (const ProfileSample& p : profile) {
      os << "lexfor_profile_hits{site=\"" << p.name << "\"} " << p.count
         << '\n';
    }
    os << "# TYPE lexfor_profile_ns_total counter\n";
    for (const ProfileSample& p : profile) {
      os << "lexfor_profile_ns_total{site=\"" << p.name << "\"} "
         << p.total_ns << '\n';
    }
    os << "# TYPE lexfor_profile_min_ns gauge\n";
    for (const ProfileSample& p : profile) {
      os << "lexfor_profile_min_ns{site=\"" << p.name << "\"} " << p.min_ns
         << '\n';
    }
    os << "# TYPE lexfor_profile_max_ns gauge\n";
    for (const ProfileSample& p : profile) {
      os << "lexfor_profile_max_ns{site=\"" << p.name << "\"} " << p.max_ns
         << '\n';
    }
  }
}

void Snapshot::append_json(std::string& out) const {
  out += "{\"wall_ns\":";
  out += std::to_string(wall_ns);
  out += ",\"events_emitted\":";
  out += std::to_string(events_emitted);
  out += ",\"counters\":{";
  bool first = true;
  for (const CounterSample& c : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, c.name);
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, g.name);
    out += "\":";
    out += std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, h.name);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    if (h.count > 0) {
      out += ",\"min\":";
      out += std::to_string(h.min);
      out += ",\"max\":";
      out += std::to_string(h.max);
      out += ",\"mean\":";
      append_double(out, h.mean());
      out += ",\"p50\":";
      append_double(out, h.percentile(50));
      out += ",\"p95\":";
      append_double(out, h.percentile(95));
      out += ",\"p99\":";
      append_double(out, h.percentile(99));
    }
    out += '}';
  }
  out += "},\"profile\":{";
  first = true;
  for (const ProfileSample& p : profile) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, p.name);
    out += "\":{\"count\":";
    out += std::to_string(p.count);
    out += ",\"total_ns\":";
    out += std::to_string(p.total_ns);
    out += ",\"min_ns\":";
    out += std::to_string(p.min_ns);
    out += ",\"max_ns\":";
    out += std::to_string(p.max_ns);
    out += ",\"mean_ns\":";
    append_double(out, p.mean_ns());
    out += '}';
  }
  out += "},\"ring\":[";
  first = true;
  for (const RingShardStats& r : ring) {
    if (!first) out += ',';
    first = false;
    out += "{\"shard\":";
    out += std::to_string(r.shard);
    out += ",\"pushed\":";
    out += std::to_string(r.pushed);
    out += ",\"drained\":";
    out += std::to_string(r.drained);
    out += ",\"dropped\":";
    out += std::to_string(r.dropped);
    out += ",\"size\":";
    out += std::to_string(r.size);
    out += '}';
  }
  out += "]}";
}

void Snapshot::to_json(std::ostream& os) const {
  std::string out;
  out.reserve(512);
  append_json(out);
  os << out << '\n';
}

}  // namespace lexfor::obs
