// Structured trace events: the unit of observability.
//
// Every observable moment in LexForensica — a verdict derivation, a
// custody transfer, a packet retained or refused by a capture device —
// becomes one TraceEvent.  Events carry BOTH clocks: wall time (steady,
// nanoseconds since tracer start) for profiling, and simulation time
// (util/sim_time.h) when the emitter runs inside a DES, so a trace of a
// simulated investigation reads in the same timeline a court would ask
// about.  The stream of events doubles as an audit record: category
// "evidence"/"court"/"legal" events at Level::kAudit reconstruct what
// was collected, under which authority, and when (§III of the paper).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/sim_time.h"

namespace lexfor::obs {

// Runtime severity/verbosity filter.  kOff disables all tracing; kError
// keeps only failures (and arms the flight recorder's error trigger,
// obs/flight.h); kAudit adds the legally-meaningful record (rulings,
// acquisitions, custody, verdicts); kInfo adds spans around
// unit-of-work operations; kDebug adds per-packet / per-sim-event
// detail.
enum class Level : std::uint8_t {
  kOff = 0,
  kError = 1,
  kAudit = 2,
  kInfo = 3,
  kDebug = 4,
};

[[nodiscard]] constexpr std::string_view to_string(Level l) noexcept {
  switch (l) {
    case Level::kOff: return "off";
    case Level::kError: return "error";
    case Level::kAudit: return "audit";
    case Level::kInfo: return "info";
    case Level::kDebug: return "debug";
  }
  return "?";
}

// Phases mirror the Chrome trace_event vocabulary so conversion is 1:1.
enum class Phase : char {
  kBegin = 'B',    // span opened
  kEnd = 'E',      // span closed
  kInstant = 'i',  // point event
  kCounter = 'C',  // sampled numeric value
};

// Sentinel for "the emitter was not running under a simulation clock".
inline constexpr std::int64_t kNoSimTime = INT64_MIN;

struct TraceEvent {
  std::uint64_t wall_ns = 0;          // steady clock, ns since tracer start
  std::int64_t sim_us = kNoSimTime;   // SimTime::us, or kNoSimTime
  // Global emission sequence (1-based), stamped by the sharded ring the
  // event lands in.  Unique per ring, monotone in claim order, so
  // (wall_ns, seq) is a total order over a merged multi-shard stream.
  std::uint64_t seq = 0;
  std::uint64_t span_id = 0;          // nonzero for kBegin/kEnd pairs
  std::uint32_t tid = 0;              // small per-thread ordinal
  Level level = Level::kInfo;
  Phase phase = Phase::kInstant;
  // Category must point at static-storage text (a string literal): it is
  // kept as a view so hot-path events never allocate for it.
  std::string_view category;
  std::string name;  // short names stay in the SSO buffer
  // Optional "key=value,key=value" payload; sinks expand it to JSON.
  // Keys and values must not contain ',' or '='.
  std::string args;
  std::int64_t value = 0;  // kCounter payload; duration_ns on kEnd

  [[nodiscard]] bool has_sim_time() const noexcept {
    return sim_us != kNoSimTime;
  }
};

}  // namespace lexfor::obs
