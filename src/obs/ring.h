// Fixed-capacity event ring: the always-on sink of last resort.
//
// The tracer writes every accepted event here before fanning out to the
// pluggable sinks, so the most recent N events are available after the
// fact — e.g. to dump the tail of a trace when an audit fails — without
// any sink having been attached up front.  A claim-then-fill spinlock
// design keeps the common path to a handful of instructions
// ("lock-free-ish": producers never block on I/O or allocation, only on
// each other for the slot copy).

#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "obs/event.h"

namespace lexfor::obs {

class EventRing {
 public:
  explicit EventRing(std::size_t capacity = 4096)
      : slots_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  // Total events ever pushed (>= size()).
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }

  // Events currently retained (min(pushed, capacity)).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t n = pushed();
    return n < slots_.size() ? static_cast<std::size_t>(n) : slots_.size();
  }

  void push(TraceEvent ev) {
    lock();
    const std::uint64_t seq = pushed_.load(std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(seq % slots_.size())] = std::move(ev);
    pushed_.store(seq + 1, std::memory_order_relaxed);
    unlock();
  }

  // Oldest-to-newest copy of the retained events.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    lock();
    std::vector<TraceEvent> out;
    const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
    const std::uint64_t kept =
        n < slots_.size() ? n : static_cast<std::uint64_t>(slots_.size());
    out.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t i = n - kept; i < n; ++i) {
      out.push_back(slots_[static_cast<std::size_t>(i % slots_.size())]);
    }
    unlock();
    return out;
  }

  void clear() {
    lock();
    pushed_.store(0, std::memory_order_relaxed);
    unlock();
  }

 private:
  void lock() const noexcept {
    while (busy_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() const noexcept { busy_.clear(std::memory_order_release); }

  mutable std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
  std::atomic<std::uint64_t> pushed_{0};
  std::vector<TraceEvent> slots_;
};

}  // namespace lexfor::obs
