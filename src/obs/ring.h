// Fixed-capacity event ring with exhaustive disposal accounting.
//
// Every event pushed into an EventRing ends its life in exactly one of
// three ways: it is still retained, it was drained (handed to a
// consumer), or it was dropped (overwritten by a newer event before any
// drain saw it).  The ring tracks all three so the invariant
//
//   pushed() == drained() + dropped() + size()
//
// holds at every instant — the same closed-world discipline
// stream::RateRing applies to bins and netsim applies to packets.  v1
// silently overwrote on wraparound; the dropped() counter is the fix
// (ISSUE 7 satellite) and is surfaced per shard as the
// obs.ring.dropped{shard} metrics by Tracer::publish_ring_metrics().
//
// One EventRing is the per-thread shard of a ShardedEventRing
// (obs/sharded_ring.h).  The spinlock is therefore uncontended on the
// hot path — the owning thread is the only producer; a drain/snapshot
// pass from another thread is the only other party — which keeps the
// common push to a handful of instructions without the cross-thread
// cache-line fights of the v1 single global ring.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/event.h"

namespace lexfor::obs {

class EventRing {
 public:
  explicit EventRing(std::size_t capacity = 4096)
      : slots_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  // Total events ever pushed.
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }

  // Events handed out through drain().
  [[nodiscard]] std::uint64_t drained() const noexcept {
    return drained_.load(std::memory_order_relaxed);
  }

  // Events overwritten on wraparound before any drain consumed them.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Events currently retained (pushed - drained - dropped).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(pushed() - drained() - dropped());
  }

  void push(TraceEvent ev) {
    lock();
    const std::uint64_t seq = pushed_.load(std::memory_order_relaxed);
    // consumed = events no longer retained; when the ring is full the
    // oldest retained event (seq `consumed`) is overwritten unseen.
    const std::uint64_t consumed = drained_.load(std::memory_order_relaxed) +
                                   dropped_.load(std::memory_order_relaxed);
    if (seq - consumed == slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    slots_[static_cast<std::size_t>(seq % slots_.size())] = std::move(ev);
    pushed_.store(seq + 1, std::memory_order_relaxed);
    unlock();
  }

  // Oldest-to-newest copy of the retained events; does not consume.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    lock();
    const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
    const std::uint64_t first = drained_.load(std::memory_order_relaxed) +
                                dropped_.load(std::memory_order_relaxed);
    out.reserve(static_cast<std::size_t>(n - first));
    for (std::uint64_t i = first; i < n; ++i) {
      out.push_back(slots_[static_cast<std::size_t>(i % slots_.size())]);
    }
    unlock();
    return out;
  }

  // Moves every retained event (oldest-to-newest) into `out` and marks
  // them drained.  Returns the number of events appended.
  std::size_t drain(std::vector<TraceEvent>& out) {
    lock();
    const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
    const std::uint64_t first = drained_.load(std::memory_order_relaxed) +
                                dropped_.load(std::memory_order_relaxed);
    const auto taken = static_cast<std::size_t>(n - first);
    out.reserve(out.size() + taken);
    for (std::uint64_t i = first; i < n; ++i) {
      out.push_back(
          std::move(slots_[static_cast<std::size_t>(i % slots_.size())]));
    }
    drained_.fetch_add(taken, std::memory_order_relaxed);
    unlock();
    return taken;
  }

  // Resets the ring to empty, forgetting all accounting.
  void clear() {
    lock();
    pushed_.store(0, std::memory_order_relaxed);
    drained_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    unlock();
  }

 private:
  void lock() const noexcept {
    while (busy_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() const noexcept { busy_.clear(std::memory_order_release); }

  mutable std::atomic_flag busy_ = ATOMIC_FLAG_INIT;
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::vector<TraceEvent> slots_;
};

}  // namespace lexfor::obs
