// The tracer: runtime-filtered event router with RAII spans.
//
// One process-wide tracer (obs::tracer()) accepts events whose level
// passes the runtime filter, stamps them with the dual clocks and the
// emitting thread's ordinal, keeps the last N per emitting thread in a
// ShardedEventRing, and fans them out to attached sinks.  The filter
// check is a single relaxed atomic load, so instrumentation left in
// release builds costs one predictable branch while tracing is off;
// the LEXFOR_OBS=0 compile toggle (obs/obs.h) removes even that.
//
// kError events additionally wake the flight recorder (obs/flight.h)
// after they land in the ring, so a dump triggered by an error always
// contains the error event itself.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event.h"
#include "obs/sharded_ring.h"
#include "obs/sink.h"
#include "util/sim_time.h"

namespace lexfor::obs {

class Tracer;

// RAII span: emits kBegin at construction, kEnd (with duration_ns in
// `value`) at destruction.  Inactive spans (filtered out, or default
// constructed) cost nothing on destruction.
class Span {
 public:
  Span() noexcept = default;
  Span(Span&& other) noexcept
      : tracer_(std::exchange(other.tracer_, nullptr)),
        id_(other.id_),
        begin_ns_(other.begin_ns_),
        level_(other.level_),
        sim_us_(other.sim_us_),
        category_(other.category_),
        name_(std::move(other.name_)) {}
  Span& operator=(Span&&) = delete;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::uint64_t id, std::uint64_t begin_ns, Level level,
       std::int64_t sim_us, std::string_view category, std::string name)
      : tracer_(tracer),
        id_(id),
        begin_ns_(begin_ns),
        level_(level),
        sim_us_(sim_us),
        category_(category),
        name_(std::move(name)) {}

  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t begin_ns_ = 0;
  Level level_ = Level::kInfo;
  std::int64_t sim_us_ = kNoSimTime;
  std::string_view category_;
  std::string name_;
};

class Tracer {
 public:
  explicit Tracer(std::size_t ring_capacity = 4096)
      : ring_(ring_capacity),
        start_(std::chrono::steady_clock::now()) {}

  // --- runtime filter ---------------------------------------------------
  // Default kOff: instrumentation is compiled in but dormant until a
  // caller (example, bench, operator hook) turns it on.
  void set_level(Level level) noexcept {
    level_.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] Level level() const noexcept {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(Level at) const noexcept {
    return level_.load(std::memory_order_relaxed) >=
           static_cast<std::uint8_t>(at);
  }

  // --- emission ---------------------------------------------------------
  void instant(Level level, std::string_view category, std::string name,
               std::string args = {}, SimTime sim = SimTime{kNoSimTime});
  void counter(Level level, std::string_view category, std::string name,
               std::int64_t value, SimTime sim = SimTime{kNoSimTime});
  [[nodiscard]] Span span(Level level, std::string_view category,
                          std::string name, std::string args = {},
                          SimTime sim = SimTime{kNoSimTime});

  // --- sinks & ring -----------------------------------------------------
  // Sinks are borrowed, not owned; callers keep them alive while attached.
  void add_sink(TraceSink* sink);
  void clear_sinks();
  void flush();

  [[nodiscard]] ShardedEventRing& ring() noexcept { return ring_; }

  // Consumes every retained event across all shards, merged into one
  // globally time-ordered stream; also publishes the per-shard drop
  // counters (see publish_ring_metrics).
  [[nodiscard]] std::vector<TraceEvent> drain();

  // Publishes each shard's cumulative drop count to the global metrics
  // registry as obs.ring.dropped{shard="k"} counters.  Deltas only:
  // safe to call repeatedly (drain() calls it for you).
  void publish_ring_metrics();

  [[nodiscard]] std::uint64_t events_emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }

  // Nanoseconds of wall clock since this tracer was constructed.
  [[nodiscard]] std::uint64_t wall_now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  friend class Span;

  void emit(TraceEvent ev);

  std::atomic<std::uint8_t> level_{static_cast<std::uint8_t>(Level::kOff)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> next_span_id_{1};
  ShardedEventRing ring_;
  std::chrono::steady_clock::time_point start_;

  // Drop counts already pushed to the metrics registry, per shard index
  // (publish_ring_metrics publishes only the delta since last call).
  std::mutex publish_mu_;
  std::vector<std::uint64_t> published_dropped_;

  // Sink list guarded by a spinlock: attach/detach are rare, emission
  // must not allocate or take a blocking mutex.
  void lock_sinks() const noexcept {
    while (sinks_busy_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock_sinks() const noexcept {
    sinks_busy_.clear(std::memory_order_release);
  }
  mutable std::atomic_flag sinks_busy_ = ATOMIC_FLAG_INIT;
  std::vector<TraceSink*> sinks_;
};

// The process-wide tracer used by the LEXFOR_OBS_* macros.  Never
// destroyed (intentionally leaked) so events emitted during static
// destruction stay safe.
[[nodiscard]] Tracer& tracer();

// Small per-thread ordinal for TraceEvent::tid (0 for the first thread).
[[nodiscard]] std::uint32_t this_thread_ordinal();

}  // namespace lexfor::obs
