// Call-site profiler: static per-site count/total/min/max aggregation.
//
// Where spans answer "what happened, in what order" one event at a
// time, the profiler answers "where did the nanoseconds go" with zero
// per-hit allocation and no event traffic: each LEXFOR_OBS_PROFILE
// call site resolves its ProfileSite once (function-local static, the
// same idiom as the metric macros), then every pass through the scope
// is two steady_clock reads and four relaxed atomic ops folding the
// elapsed nanoseconds into the site's running aggregate.
//
// The profiler is dormant by default, like the tracer's level filter: a
// disabled scope costs one relaxed atomic load and a branch, so the
// instrumentation can sit inside the netsim event loop and the
// correlation kernel without moving their benchmarks.  Enable with
// profiler().set_enabled(true); read results through obs::Snapshot,
// which folds every site into the same export path (Prometheus text /
// JSON) as the metrics registry.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lexfor::obs {

class ProfileSite {
 public:
  explicit ProfileSite(std::string name) : name_(std::move(name)) {}

  ProfileSite(const ProfileSite&) = delete;
  ProfileSite& operator=(const ProfileSite&) = delete;

  void record(std::uint64_t ns) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = min_ns_.load(std::memory_order_relaxed);
    while (ns < cur && !min_ns_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
    cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur && !max_ns_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  // min/max report 0 while the site has no hits (the UINT64_MAX seed
  // sentinel never leaks, mirroring Histogram::min()).
  [[nodiscard]] std::uint64_t min_ns() const noexcept {
    return count() == 0 ? 0 : min_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const noexcept {
    return count() == 0 ? 0 : max_ns_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns_{0};
};

// Point-in-time copy of one site, used by obs::Snapshot.
struct ProfileSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;

  [[nodiscard]] double mean_ns() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(count);
  }
};

class ProfileRegistry {
 public:
  ProfileRegistry() = default;
  ProfileRegistry(const ProfileRegistry&) = delete;
  ProfileRegistry& operator=(const ProfileRegistry&) = delete;

  // Lookup-or-create; returned references stay valid for the
  // registry's lifetime (sites live in a deque).
  [[nodiscard]] ProfileSite& site(std::string_view name);

  // Runtime switch read by every ProfileScope; default off so the
  // instrumented hot loops (netsim events, kernel scans) pay one
  // relaxed load until a bench/operator opts in.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Point-in-time copy of every site, sorted by name.
  [[nodiscard]] std::vector<ProfileSample> samples() const;

  // Zeroes every site's aggregate; sites (and cached references) stay
  // registered.
  void reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::deque<ProfileSite> sites_;
};

// The process-wide registry used by LEXFOR_OBS_PROFILE; leaked on
// purpose like obs::tracer().
[[nodiscard]] ProfileRegistry& profiler();

// RAII scope: folds its lifetime into `site` when the profiler is
// enabled at construction time, costs a load+branch otherwise.
class ProfileScope {
 public:
  explicit ProfileScope(ProfileSite& site) noexcept {
    if (profiler().enabled()) {
      site_ = &site;
      begin_ = std::chrono::steady_clock::now();
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope() {
    if (site_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - begin_)
                        .count();
    site_->record(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
  }

 private:
  ProfileSite* site_ = nullptr;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace lexfor::obs
