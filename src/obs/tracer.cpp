#include "obs/tracer.h"

#include <cstdio>

#include "obs/flight.h"
#include "obs/metrics.h"

namespace lexfor::obs {

Span::~Span() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end_ns = tracer_->wall_now_ns();
  TraceEvent ev;
  ev.wall_ns = end_ns;
  ev.sim_us = sim_us_;
  ev.span_id = id_;
  ev.level = level_;
  ev.phase = Phase::kEnd;
  ev.category = category_;
  ev.name = std::move(name_);
  ev.value = static_cast<std::int64_t>(end_ns - begin_ns_);
  tracer_->emit(std::move(ev));
}

void Tracer::instant(Level level, std::string_view category, std::string name,
                     std::string args, SimTime sim) {
  if (!enabled(level)) return;
  TraceEvent ev;
  ev.wall_ns = wall_now_ns();
  ev.sim_us = sim.us;
  ev.level = level;
  ev.phase = Phase::kInstant;
  ev.category = category;
  ev.name = std::move(name);
  ev.args = std::move(args);
  emit(std::move(ev));
}

void Tracer::counter(Level level, std::string_view category, std::string name,
                     std::int64_t value, SimTime sim) {
  if (!enabled(level)) return;
  TraceEvent ev;
  ev.wall_ns = wall_now_ns();
  ev.sim_us = sim.us;
  ev.level = level;
  ev.phase = Phase::kCounter;
  ev.category = category;
  ev.name = std::move(name);
  ev.value = value;
  emit(std::move(ev));
}

Span Tracer::span(Level level, std::string_view category, std::string name,
                  std::string args, SimTime sim) {
  if (!enabled(level)) return Span{};
  const std::uint64_t id =
      next_span_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t begin_ns = wall_now_ns();
  TraceEvent ev;
  ev.wall_ns = begin_ns;
  ev.sim_us = sim.us;
  ev.span_id = id;
  ev.level = level;
  ev.phase = Phase::kBegin;
  ev.category = category;
  ev.name = name;
  ev.args = std::move(args);
  emit(std::move(ev));
  return Span{this, id, begin_ns, level, sim.us, category, std::move(name)};
}

void Tracer::emit(TraceEvent ev) {
  ev.tid = this_thread_ordinal();
  emitted_.fetch_add(1, std::memory_order_relaxed);
  const Level level = ev.level;
  lock_sinks();
  for (TraceSink* sink : sinks_) sink->write(ev);
  unlock_sinks();
  ring_.push(std::move(ev));
  // After the push, so a dump triggered by this event includes it.
  if (level == Level::kError) flight_recorder().on_error_event();
}

std::vector<TraceEvent> Tracer::drain() {
  std::vector<TraceEvent> out = ring_.drain();
  publish_ring_metrics();
  return out;
}

void Tracer::publish_ring_metrics() {
  const std::scoped_lock lock(publish_mu_);
  const std::size_t shards = ring_.shard_count();
  if (published_dropped_.size() < shards) published_dropped_.resize(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    const std::uint64_t dropped = ring_.shard(i).dropped();
    if (dropped > published_dropped_[i]) {
      char name[48];
      std::snprintf(name, sizeof name, "obs.ring.dropped{shard=\"%zu\"}", i);
      metrics().counter(name).add(dropped - published_dropped_[i]);
      published_dropped_[i] = dropped;
    }
  }
}

void Tracer::add_sink(TraceSink* sink) {
  if (sink == nullptr) return;
  lock_sinks();
  sinks_.push_back(sink);
  unlock_sinks();
}

void Tracer::clear_sinks() {
  lock_sinks();
  sinks_.clear();
  unlock_sinks();
}

void Tracer::flush() {
  lock_sinks();
  for (TraceSink* sink : sinks_) sink->flush();
  unlock_sinks();
}

Tracer& tracer() {
  // Leaked on purpose: instrumentation in static destructors must not
  // race tracer teardown.  The function-local pointer keeps the object
  // reachable, so LeakSanitizer does not report it.
  static Tracer* const instance = new Tracer();
  return *instance;
}

std::uint32_t this_thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace lexfor::obs
