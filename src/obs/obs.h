// Umbrella header + instrumentation macros.
//
// Instrumented code uses ONLY these macros, never the tracer/registry
// directly, so the LEXFOR_OBS compile-time toggle can erase every trace
// of observability from a build:
//
//   LEXFOR_OBS=1 (default)  macros expand to a runtime-level check (one
//                           relaxed atomic load) and, when tracing is
//                           on, an event emission; metric macros expand
//                           to one cached-reference atomic op.
//   LEXFOR_OBS=0            macros expand to nothing at all — argument
//                           expressions are not evaluated, no symbols
//                           are referenced.  (cmake -DLEXFOR_OBS=OFF)
//
// Event/span macros take an explicit SimTime where the emitter runs
// under a simulation clock and lexfor::obs::no_sim_time() elsewhere, so
// traces of DES runs carry both timelines (event.h).

#pragma once

#include "obs/event.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/ring.h"
#include "obs/sharded_ring.h"
#include "obs/sink.h"
#include "obs/snapshot.h"
#include "obs/tracer.h"
#include "util/sim_time.h"

namespace lexfor::obs {

// SimTime sentinel for emitters outside any simulation.
[[nodiscard]] inline constexpr SimTime no_sim_time() noexcept {
  return SimTime{kNoSimTime};
}

}  // namespace lexfor::obs

#ifndef LEXFOR_OBS
#define LEXFOR_OBS 1
#endif

#define LEXFOR_OBS_CONCAT_IMPL(a, b) a##b
#define LEXFOR_OBS_CONCAT(a, b) LEXFOR_OBS_CONCAT_IMPL(a, b)

#if LEXFOR_OBS

// RAII span covering the rest of the enclosing scope.  `name` may be a
// runtime std::string; `args`/`name` are only evaluated when tracing is
// enabled at `level`.
#define LEXFOR_OBS_SPAN(level, category, name, args, sim)                     \
  const ::lexfor::obs::Span LEXFOR_OBS_CONCAT(lexfor_obs_span_, __LINE__) =   \
      ::lexfor::obs::tracer().enabled(level)                                  \
          ? ::lexfor::obs::tracer().span((level), (category), (name), (args), \
                                         (sim))                               \
          : ::lexfor::obs::Span{}

// Point event.
#define LEXFOR_OBS_EVENT(level, category, name, args, sim)                  \
  do {                                                                      \
    if (::lexfor::obs::tracer().enabled(level)) {                           \
      ::lexfor::obs::tracer().instant((level), (category), (name), (args),  \
                                      (sim));                               \
    }                                                                       \
  } while (false)

// Sampled numeric value rendered as a counter track in trace viewers.
#define LEXFOR_OBS_TRACK(level, category, name, value, sim)                 \
  do {                                                                      \
    if (::lexfor::obs::tracer().enabled(level)) {                           \
      ::lexfor::obs::tracer().counter((level), (category), (name), (value), \
                                      (sim));                               \
    }                                                                       \
  } while (false)

// Metrics: the instrument is resolved once per call site (thread-safe
// function-local static), then each hit is a single atomic op.
#define LEXFOR_OBS_COUNTER_ADD(name, delta)                                 \
  do {                                                                      \
    static ::lexfor::obs::Counter& lexfor_obs_counter =                     \
        ::lexfor::obs::metrics().counter(name);                             \
    lexfor_obs_counter.add(delta);                                          \
  } while (false)

#define LEXFOR_OBS_GAUGE_SET(name, value)                                   \
  do {                                                                      \
    static ::lexfor::obs::Gauge& lexfor_obs_gauge =                         \
        ::lexfor::obs::metrics().gauge(name);                               \
    lexfor_obs_gauge.set(value);                                            \
  } while (false)

#define LEXFOR_OBS_HISTOGRAM_RECORD(name, sample)                           \
  do {                                                                      \
    static ::lexfor::obs::Histogram& lexfor_obs_histogram =                 \
        ::lexfor::obs::metrics().histogram(name);                           \
    lexfor_obs_histogram.record(sample);                                    \
  } while (false)

// Call-site profiler scope: the site is resolved once per call site
// like the metric macros; each pass costs one relaxed load (and, when
// the profiler is enabled, two steady_clock reads folded into the
// site's count/total/min/max).  `name` must be a string literal or
// otherwise stable for the first hit.
#define LEXFOR_OBS_PROFILE(name)                                            \
  static ::lexfor::obs::ProfileSite& LEXFOR_OBS_CONCAT(                     \
      lexfor_obs_profile_site_, __LINE__) =                                 \
      ::lexfor::obs::profiler().site(name);                                 \
  const ::lexfor::obs::ProfileScope LEXFOR_OBS_CONCAT(                      \
      lexfor_obs_profile_scope_, __LINE__)(                                 \
      LEXFOR_OBS_CONCAT(lexfor_obs_profile_site_, __LINE__))

// Pre-registers the calling thread's ring shard so a worker's first
// traced event doesn't pay the registration mutex inside a hot region.
// Intended for thread-pool worker-init hooks.
#define LEXFOR_OBS_WARM_THREAD()                                            \
  ::lexfor::obs::tracer().ring().register_this_thread()

#else  // LEXFOR_OBS == 0: erase instrumentation entirely.

#define LEXFOR_OBS_SPAN(level, category, name, args, sim) ((void)0)
#define LEXFOR_OBS_EVENT(level, category, name, args, sim) ((void)0)
#define LEXFOR_OBS_TRACK(level, category, name, value, sim) ((void)0)
#define LEXFOR_OBS_COUNTER_ADD(name, delta) ((void)0)
#define LEXFOR_OBS_GAUGE_SET(name, value) ((void)0)
#define LEXFOR_OBS_HISTOGRAM_RECORD(name, sample) ((void)0)
#define LEXFOR_OBS_PROFILE(name) ((void)0)
#define LEXFOR_OBS_WARM_THREAD() ((void)0)

#endif  // LEXFOR_OBS
