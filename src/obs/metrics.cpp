#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "obs/sink.h"  // append_json_escaped

namespace lexfor::obs {
namespace {

// Lock-free running min/max via CAS loops.
void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t v) noexcept {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t v) noexcept {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace detail {

double percentile_from_buckets(const std::vector<std::int64_t>& bounds,
                               const std::vector<std::uint64_t>& buckets,
                               std::uint64_t count, std::int64_t observed_min,
                               std::int64_t observed_max, double p) {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  const auto lo = static_cast<double>(observed_min);
  const auto hi = static_cast<double>(observed_max);

  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate within [lower, upper] of the containing bucket,
    // tightened by the observed extremes.  The overflow bucket (i ==
    // bounds.size()) has no declared upper bound: its upper edge IS the
    // observed max — never a value past it.
    double lower = i == 0 ? lo : static_cast<double>(bounds[i - 1]);
    double upper = i < bounds.size() ? static_cast<double>(bounds[i]) : hi;
    lower = std::max(lower, lo);
    upper = std::min(upper, hi);
    if (upper < lower) upper = lower;
    const double frac = (target - cumulative) / in_bucket;
    return lower + (upper - lower) * frac;
  }
  return hi;
}

}  // namespace detail

Histogram::Histogram(std::string name, std::vector<std::int64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds_us();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.resize(bounds_.size() + 1);  // + overflow
}

std::vector<std::int64_t> Histogram::default_latency_bounds_us() {
  std::vector<std::int64_t> bounds;
  for (std::int64_t decade = 1; decade <= 1'000'000; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  return bounds;
}

void Histogram::record(std::int64_t sample) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  atomic_min(min_, sample);
  atomic_max(max_, sample);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::percentile(double p) const {
  std::vector<std::uint64_t> buckets;
  buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    buckets.push_back(b.load(std::memory_order_relaxed));
  }
  return detail::percentile_from_buckets(bounds_, buckets, count(), min(),
                                         max(), p);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  for (auto& c : counters_) {
    if (c.name() == name) return c;
  }
  return counters_.emplace_back(std::string(name));
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  for (auto& g : gauges_) {
    if (g.name() == name) return g;
  }
  return gauges_.emplace_back(std::string(name));
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::int64_t> bounds) {
  const std::scoped_lock lock(mu_);
  for (auto& h : histograms_) {
    if (h.name() == name) return h;
  }
  return histograms_.emplace_back(std::string(name), std::move(bounds));
}

namespace {

template <typename T>
std::vector<const T*> sorted_by_name(const std::deque<T>& items) {
  std::vector<const T*> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(&item);
  std::sort(out.begin(), out.end(), [](const T* a, const T* b) {
    return a->name() < b->name();
  });
  return out;
}

}  // namespace

std::vector<CounterSample> MetricsRegistry::counter_samples() const {
  std::vector<CounterSample> out;
  const std::scoped_lock lock(mu_);
  out.reserve(counters_.size());
  for (const Counter* c : sorted_by_name(counters_)) {
    out.push_back(CounterSample{c->name(), c->value()});
  }
  return out;
}

std::vector<GaugeSample> MetricsRegistry::gauge_samples() const {
  std::vector<GaugeSample> out;
  const std::scoped_lock lock(mu_);
  out.reserve(gauges_.size());
  for (const Gauge* g : sorted_by_name(gauges_)) {
    out.push_back(GaugeSample{g->name(), g->value()});
  }
  return out;
}

std::vector<HistogramSample> MetricsRegistry::histogram_samples() const {
  std::vector<HistogramSample> out;
  const std::scoped_lock lock(mu_);
  out.reserve(histograms_.size());
  for (const Histogram* h : sorted_by_name(histograms_)) {
    HistogramSample s;
    s.name = h->name();
    s.bounds = h->bounds();
    s.buckets.reserve(h->num_buckets());
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      s.buckets.push_back(h->bucket_count(i));
    }
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::to_text(std::ostream& os) const {
  const std::scoped_lock lock(mu_);
  for (const Counter* c : sorted_by_name(counters_)) {
    os << "counter   " << c->name() << " = " << c->value() << '\n';
  }
  for (const Gauge* g : sorted_by_name(gauges_)) {
    os << "gauge     " << g->name() << " = " << g->value() << '\n';
  }
  for (const Histogram* h : sorted_by_name(histograms_)) {
    os << "histogram " << h->name() << " count=" << h->count();
    if (h->count() > 0) {
      os << " min=" << h->min() << " mean=" << h->mean()
         << " p50=" << h->percentile(50) << " p95=" << h->percentile(95)
         << " p99=" << h->percentile(99) << " max=" << h->max();
    }
    os << '\n';
  }
}

void MetricsRegistry::to_json(std::ostream& os) const {
  const std::scoped_lock lock(mu_);
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const Counter* c : sorted_by_name(counters_)) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, c->name());
    out += "\":";
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const Gauge* g : sorted_by_name(gauges_)) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, g->name());
    out += "\":";
    out += std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const Histogram* h : sorted_by_name(histograms_)) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, h->name());
    out += "\":{\"count\":";
    out += std::to_string(h->count());
    if (h->count() > 0) {
      char buf[64];
      out += ",\"min\":";
      out += std::to_string(h->min());
      out += ",\"max\":";
      out += std::to_string(h->max());
      std::snprintf(buf, sizeof buf, ",\"mean\":%.3f", h->mean());
      out += buf;
      std::snprintf(buf, sizeof buf, ",\"p50\":%.3f", h->percentile(50));
      out += buf;
      std::snprintf(buf, sizeof buf, ",\"p95\":%.3f", h->percentile(95));
      out += buf;
      std::snprintf(buf, sizeof buf, ",\"p99\":%.3f", h->percentile(99));
      out += buf;
    }
    out += '}';
  }
  out += "}}";
  os << out << '\n';
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mu_);
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.reset();
  for (auto& h : histograms_) h.reset();
}

MetricsRegistry& metrics() {
  // Leaked on purpose; see obs::tracer().
  static MetricsRegistry* const instance = new MetricsRegistry();
  return *instance;
}

}  // namespace lexfor::obs
