// Per-thread sharded event ring: the v2 always-on sink of last resort.
//
// v1 funneled every trace write through one spinlocked EventRing, so
// util::ThreadPool workers (BatchEvaluator, ScanBatch, stream taps)
// serialized on a single cache line per event.  v2 gives each emitting
// thread its own fixed-capacity EventRing shard, registered on first
// use and cached in a thread-local table, so the hot path is:
//
//   1. one relaxed fetch_add on the global sequence (stamps
//      TraceEvent::seq, the merge tiebreaker),
//   2. a thread-local cache hit resolving this thread's shard,
//   3. an uncontended per-shard spinlock around the slot copy —
//      producers never contend with each other, only (briefly) with a
//      drain/snapshot pass walking the shards.
//
// drain()/snapshot() merge all shards into one globally time-ordered
// stream, sorted by (wall_ns, seq): wall time is the timeline, the
// claim sequence breaks ties deterministically.  Disposal accounting is
// exhaustive per shard and in aggregate:
//
//   pushed() == drained() + dropped() + size()
//
// Shards belong to threads for the ring's lifetime; a thread that
// exits leaves its shard (and any undrained events) in place, so
// nothing an exited worker traced is lost before the next drain.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/event.h"
#include "obs/ring.h"

namespace lexfor::obs {

class ShardedEventRing {
 public:
  // `shard_capacity` is the retained-event budget PER SHARD (per
  // emitting thread), clamped to at least 1.
  explicit ShardedEventRing(std::size_t shard_capacity = 4096);

  ShardedEventRing(const ShardedEventRing&) = delete;
  ShardedEventRing& operator=(const ShardedEventRing&) = delete;

  // Stamps ev.seq and pushes into the calling thread's shard
  // (registering the shard on this thread's first push).
  void push(TraceEvent ev);

  // Pre-registers the calling thread's shard so the first traced event
  // on a hot path does not pay the registration mutex.  Thread pools
  // call this from their worker-start hook (LEXFOR_OBS_WARM_THREAD).
  void register_this_thread();

  // Merged oldest-to-newest copy of every shard's retained events,
  // globally ordered by (wall_ns, seq).  Does not consume.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  // Consumes every retained event from every shard and returns the
  // merged, globally (wall_ns, seq)-ordered stream.
  [[nodiscard]] std::vector<TraceEvent> drain();

  // Aggregate disposal accounting across shards.
  [[nodiscard]] std::size_t size() const;       // retained
  [[nodiscard]] std::uint64_t pushed() const;
  [[nodiscard]] std::uint64_t drained() const;
  [[nodiscard]] std::uint64_t dropped() const;

  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] std::size_t shard_capacity() const noexcept {
    return shard_capacity_;
  }
  // Per-shard view (shard indices are stable registration ordinals).
  [[nodiscard]] const EventRing& shard(std::size_t i) const;

  // Empties every shard and resets its accounting.  Registered shards
  // stay registered (threads hold cached pointers to them); the global
  // sequence keeps counting so post-clear events still sort after
  // pre-clear ones.
  void clear();

 private:
  [[nodiscard]] EventRing& shard_for_this_thread();

  template <typename PerShard>
  void for_each_shard(PerShard&& fn) const {
    const std::scoped_lock lock(register_mu_);
    for (const EventRing& s : shards_) fn(s);
  }

  const std::uint64_t id_;  // process-unique; keys the thread cache
  const std::size_t shard_capacity_;
  std::atomic<std::uint64_t> next_seq_{0};
  mutable std::mutex register_mu_;  // guards shards_ growth only
  std::deque<EventRing> shards_;    // stable references
};

// Sorts `events` into the global (wall_ns, seq) stream order in place.
void sort_time_ordered(std::vector<TraceEvent>& events);

}  // namespace lexfor::obs
