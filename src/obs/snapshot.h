// Point-in-time metrics snapshots with delta support and exposition.
//
// A Snapshot copies every counter, gauge, histogram, profiler site and
// ring-shard stat into plain structs, detached from the live registry:
// safe to hold, diff and serialize while the instruments keep moving.
// `since(prev)` turns two snapshots into a monotonic delta (counter
// increments, histogram bucket increments, profiler hit deltas) with a
// reset guard, which is what benchmark reports and the A-OBS2
// experiment consume.  Two writers cover the export paths: Prometheus
// text exposition (`to_prometheus`) for scrape-style consumption, and
// a single-line JSON object (`to_json` / `append_json`) that
// tools/run_benchmarks.sh embeds into BENCH_<date>.json and the flight
// recorder embeds into its dump.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace lexfor::obs {

// Per-shard ring accounting at capture time.  The exhaustive invariant
// pushed == drained + dropped + size holds for each entry.
struct RingShardStats {
  std::size_t shard = 0;
  std::uint64_t pushed = 0;
  std::uint64_t drained = 0;
  std::uint64_t dropped = 0;
  std::uint64_t size = 0;
};

struct Snapshot {
  // Tracer wall clock at capture (0 for registry-only captures).
  std::uint64_t wall_ns = 0;
  std::uint64_t events_emitted = 0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<ProfileSample> profile;
  std::vector<RingShardStats> ring;

  // Captures the process-wide instruments: metrics() + profiler() +
  // tracer() ring stats.  Publishes ring drop counters first so the
  // counter section already reflects obs.ring.dropped{shard="k"}.
  [[nodiscard]] static Snapshot capture();

  // Captures an explicit registry (and optionally a profiler); no
  // tracer/ring involvement.  Used by tests and embedded registries.
  [[nodiscard]] static Snapshot capture(const MetricsRegistry& reg,
                                        const ProfileRegistry* prof = nullptr);

  // Monotonic delta `*this - prev`: counter values, histogram bucket
  // counts/sums, profiler hits and ring pushed/drained/dropped become
  // increments since `prev`; gauges, sizes and observed min/max stay at
  // their current reading.  Instruments absent from `prev` — or whose
  // count went backwards (a reset) — report their full current value.
  [[nodiscard]] Snapshot since(const Snapshot& prev) const;

  // Prometheus text exposition: `# TYPE` per family, names sanitized
  // (`.` -> `_`), label braces in instrument names passed through, and
  // histograms expanded to cumulative `_bucket{le=...}` series plus
  // `_sum` / `_count`.  Profiler sites export as
  // lexfor_profile_*{site="..."} families.
  void to_prometheus(std::ostream& os) const;

  // Single JSON object (no trailing newline) appended to `out`.
  void append_json(std::string& out) const;
  // Same object as one line on `os`.
  void to_json(std::ostream& os) const;
};

}  // namespace lexfor::obs
