// Pluggable trace sinks: text, JSONL, Chrome trace_event.
//
// A sink receives every event the tracer accepts.  TextSink writes an
// aligned human-readable log; JsonlSink writes one JSON object per line
// (grep/jq-friendly); ChromeTraceSink writes the trace_event JSON array
// format that chrome://tracing and Perfetto load directly, turning an
// investigation run into a browsable timeline where custody, authority
// and acquisition events interleave — the court-facing audit view.

#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "obs/event.h"

namespace lexfor::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& ev) = 0;
  virtual void flush() {}
};

// Human-readable one-line-per-event log.
class TextSink final : public TraceSink {
 public:
  explicit TextSink(std::ostream& os) : os_(os) {}
  void write(const TraceEvent& ev) override;
  void flush() override { os_.flush(); }

 private:
  std::ostream& os_;
};

// One JSON object per line; stable field order.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}
  void write(const TraceEvent& ev) override;
  void flush() override { os_.flush(); }

 private:
  std::ostream& os_;
};

// Chrome trace_event "JSON array format".  The array is opened lazily on
// the first event and closed by finish() (or the destructor), so the
// output is a complete, valid JSON document.
class ChromeTraceSink final : public TraceSink {
 public:
  // Which clock drives the "ts" field.  kWall is always monotonic.
  // kSim puts DES runs on the simulation timeline: events that carry
  // sim time use it, events that do not inherit the latest sim
  // timestamp seen (so engine work nests under the sim moment that
  // triggered it).
  enum class TimeBase { kWall, kSim };

  explicit ChromeTraceSink(std::ostream& os, TimeBase base = TimeBase::kWall)
      : os_(os), base_(base) {}
  ~ChromeTraceSink() override { finish(); }

  void write(const TraceEvent& ev) override;
  void flush() override { os_.flush(); }

  // Closes the JSON array; idempotent.  Events after finish() are dropped.
  void finish();

 private:
  [[nodiscard]] double timestamp_us(const TraceEvent& ev);

  std::ostream& os_;
  TimeBase base_;
  bool open_ = false;
  bool finished_ = false;
  std::int64_t last_sim_us_ = 0;
};

// Appends `text` to `out` with JSON string escaping applied.
void append_json_escaped(std::string& out, std::string_view text);

// Appends one event as a complete JSON object (no trailing newline) in
// the JsonlSink line format: raw dual clocks + level + nested Chrome
// style event body.  Shared by JsonlSink and the flight recorder so a
// flight record line greps/jq's exactly like a live JSONL trace.
void append_event_jsonl(std::string& out, const TraceEvent& ev);

// Expands an obs args payload ("k=v,k=v") into a JSON object body
// (without the surrounding braces).  Malformed pairs become "note" keys.
[[nodiscard]] std::string args_to_json(std::string_view args);

}  // namespace lexfor::obs
