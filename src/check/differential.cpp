#include "check/differential.h"

#include <sstream>

#include "check/scenario_gen.h"
#include "legal/scenario_library.h"
#include "legal/suppression.h"
#include "lint/linter.h"
#include "lint/passes.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace lexfor::check {
namespace {

// A fact set supporting probable cause (IP linked + subscriber
// identified, the paper's warrant-grade pairing).  Title III's
// probable-cause-plus-necessity showing is deliberately NOT reachable
// from facts alone in this model, so a wiretap-order application always
// draws exactly one proof-gap diagnostic — an engine/linter agreement
// fact the checker encodes below.
void add_warrant_grade_facts(lint::InvestigationPlan& plan) {
  plan.with_fact({legal::FactKind::kIpAddressLinked, 1.0, "IP linked"})
      .with_fact(
          {legal::FactKind::kSubscriberIdentified, 1.0, "subscriber found"});
}

// Field-for-field comparison of two Determinations; empty string when
// they match.  The engine is pure, so any difference between the serial
// and cached paths is a verdict-cache corruption.
std::string diff_determinations(const legal::Determination& a,
                                const legal::Determination& b) {
  std::ostringstream os;
  if (a.needs_process != b.needs_process) {
    os << "needs_process " << a.needs_process << " vs " << b.needs_process
       << "; ";
  }
  if (a.required_process != b.required_process) {
    os << "required_process " << to_string(a.required_process) << " vs "
       << to_string(b.required_process) << "; ";
  }
  if (a.required_proof != b.required_proof) {
    os << "required_proof " << to_string(a.required_proof) << " vs "
       << to_string(b.required_proof) << "; ";
  }
  if (a.rep.has_rep != b.rep.has_rep) {
    os << "rep " << a.rep.has_rep << " vs " << b.rep.has_rep << "; ";
  }
  if (a.governing_statutes != b.governing_statutes) os << "statutes differ; ";
  if (a.exceptions_applied != b.exceptions_applied) os << "exceptions differ; ";
  if (a.rationale != b.rationale) os << "rationale differs; ";
  if (a.citations != b.citations) os << "citations differ; ";
  return os.str();
}

}  // namespace

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "[" << rule << "] seed=" << seed << " trial=" << trial << "\n  "
     << detail << "\n  repro: " << scenario_row;
  return os.str();
}

void report_to_flight(const Violation& v) {
#if LEXFOR_OBS
  obs::FlightRecorder& recorder = obs::flight_recorder();
  if (!recorder.armed()) return;
  (void)recorder.dump("check-violation:" + v.rule);
#else
  (void)v;
#endif
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << "differential check: " << scenarios_checked << " scenarios ("
     << trials << " trials), " << comparisons << " comparisons, "
     << violations.size() << " violation(s)";
  for (const auto& v : violations) os << "\n" << v.to_string();
  return os.str();
}

void CheckReport::merge(const CheckReport& other) {
  trials += other.trials;
  scenarios_checked += other.scenarios_checked;
  comparisons += other.comparisons;
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

lint::InvestigationPlan single_step_plan(const legal::Scenario& s,
                                         legal::ProcessKind authority) {
  lint::InvestigationPlan plan("differential: " + s.name,
                               legal::CrimeCategory::kGeneral);
  const auto day = [](double d) { return SimTime::from_sec(d * 86400.0); };
  if (authority == legal::ProcessKind::kNone) {
    plan.plan_acquisition("acquire", s, day(1));
    return plan;
  }
  add_warrant_grade_facts(plan);
  const PlanStepId app = plan.plan_application("apply", authority, day(0));
  plan.plan_acquisition("acquire", s, day(1)).using_authority(app);
  return plan;
}

DifferentialChecker::DifferentialChecker()
    : evaluator_(legal::BatchOptions{.threads = 1,
                                     .cache_capacity = 1 << 15,
                                     .cache_shards = 8,
                                     .use_shared_cache = false}) {}

void DifferentialChecker::check_scenario(const legal::Scenario& s,
                                         std::uint64_t seed, std::size_t trial,
                                         CheckReport& report) const {
  LEXFOR_OBS_COUNTER_ADD("check.scenarios", 1);
  ++report.scenarios_checked;

  const auto fail = [&](const char* rule, std::string detail) {
    LEXFOR_OBS_COUNTER_ADD("check.violations", 1);
    report.violations.push_back(Violation{rule, std::move(detail),
                                          describe_scenario(s), seed, trial});
    report_to_flight(report.violations.back());
  };
  const auto compared = [&](std::size_t n) {
    report.comparisons += n;
    LEXFOR_OBS_COUNTER_ADD("check.comparisons", static_cast<std::int64_t>(n));
  };

  // --- 1. engine determinism & verdict-cache coherence -----------------
  const legal::Determination serial = evaluator_.engine().evaluate(s);
  const legal::Determination cached = evaluator_.evaluate(s);   // fill or hit
  const legal::Determination cached2 = evaluator_.evaluate(s);  // certain hit
  if (const std::string d = diff_determinations(serial, cached); !d.empty()) {
    fail("engine-cache-coherence", "serial vs cached evaluate: " + d);
  }
  if (const std::string d = diff_determinations(cached, cached2); !d.empty()) {
    fail("engine-determinism", "two cached evaluations differ: " + d);
  }
  compared(2);

  // --- 2. canonical fingerprint stability ------------------------------
  const legal::Scenario copy = s;
  if (legal::fingerprint(s) != legal::fingerprint(copy)) {
    fail("fingerprint-stability",
         "copying a scenario changed its canonical fingerprint");
  }
  compared(1);

  // --- 3. linter agreement ---------------------------------------------
  // 3a: no planned process.  The linter must demand process exactly when
  // the engine does, and must say nothing else about this trivial plan.
  {
    const lint::LintReport lint_report =
        lint::PlanLinter{}.lint(single_step_plan(s, legal::ProcessKind::kNone));
    const std::size_t expect_missing = serial.needs_process ? 1 : 0;
    if (lint_report.count(lint::kRuleMissingProcess) != expect_missing ||
        lint_report.error_count != expect_missing) {
      std::ostringstream os;
      os << "engine verdict '" << serial.verdict() << "' (requires "
         << to_string(serial.required_process) << ") but the linter raised "
         << lint_report.count(lint::kRuleMissingProcess)
         << " missing-process / " << lint_report.error_count
         << " total errors on the processless plan";
      fail("lint-agreement", os.str());
    }
  }
  // 3b: exactly the required instrument, obtained on warrant-grade
  // facts, executed inside its window: never missing-process, and clean
  // except the structural Title III proof gap.
  if (serial.needs_process) {
    const lint::LintReport lint_report =
        lint::PlanLinter{}.lint(single_step_plan(s, serial.required_process));
    const std::size_t expect_proof_gap =
        serial.required_process == legal::ProcessKind::kWiretapOrder ? 1 : 0;
    if (lint_report.count(lint::kRuleMissingProcess) != 0 ||
        lint_report.count(lint::kRuleProofGap) != expect_proof_gap ||
        lint_report.error_count != expect_proof_gap) {
      std::ostringstream os;
      os << "plan holding the required " << to_string(serial.required_process)
         << " still lints dirty: " << lint_report.error_count << " errors ("
         << lint_report.count(lint::kRuleMissingProcess)
         << " missing-process, " << lint_report.count(lint::kRuleProofGap)
         << " proof-gap)";
      fail("lint-agreement", os.str());
    }
  }
  compared(2);

  // --- 4. suppression agreement ----------------------------------------
  // Held nothing: the item (and a lawful child derived from it) must be
  // suppressed exactly when the engine demands process — the runtime
  // mirror of the linter's static taint closure.
  {
    legal::ProvenanceGraph graph;
    legal::AcquisitionRecord parent;
    parent.id = EvidenceId{1};
    parent.description = s.name;
    parent.required = serial.required_process;
    parent.held = legal::ProcessKind::kNone;
    (void)graph.add(parent);
    legal::AcquisitionRecord child;
    child.id = EvidenceId{2};
    child.description = "derived analysis";
    child.required = legal::ProcessKind::kNone;  // itself lawful
    child.held = legal::ProcessKind::kNone;
    child.derived_from = {EvidenceId{1}};
    (void)graph.add(child);

    const legal::SuppressionReport sup = legal::analyze_suppression(graph);
    if (sup.is_suppressed(EvidenceId{1}) != serial.needs_process) {
      std::ostringstream os;
      os << "engine verdict '" << serial.verdict()
         << "' but a processless acquisition is "
         << (sup.is_suppressed(EvidenceId{1}) ? "suppressed" : "admissible");
      fail("suppression-agreement", os.str());
    }
    if (sup.is_suppressed(EvidenceId{2}) != serial.needs_process) {
      fail("suppression-agreement",
           "fruit-of-the-poisonous-tree closure disagrees with the engine "
           "verdict for a lawful derived item");
    }
  }
  // Held exactly the required instrument: always admissible.
  {
    legal::ProvenanceGraph graph;
    legal::AcquisitionRecord rec;
    rec.id = EvidenceId{1};
    rec.description = s.name;
    rec.required = serial.required_process;
    rec.held = serial.required_process;
    (void)graph.add(rec);
    const legal::SuppressionReport sup = legal::analyze_suppression(graph);
    if (sup.is_suppressed(EvidenceId{1})) {
      fail("suppression-agreement",
           "holding exactly the required instrument still got the evidence "
           "suppressed");
    }
  }
  compared(3);
}

CheckReport DifferentialChecker::run(const CheckOptions& options) const {
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "check", "differential",
                  "trials=" + std::to_string(options.trials),
                  obs::no_sim_time());
  CheckReport report;

  const auto full = [&] {
    return options.max_violations != 0 &&
           report.violations.size() >= options.max_violations;
  };

  // Library corpus first: every table scene, with its declared verdict
  // cross-checked against the engine before the N-version comparison.
  for (const auto& scene : legal::library::scenes()) {
    const legal::Scenario s = scene.build();
    const legal::Determination d = evaluator_.engine().evaluate(s);
    ++report.comparisons;
    if (d.needs_process != scene.expects_process() ||
        d.required_process != scene.expected_process) {
      report.violations.push_back(Violation{
          "scene-table-verdict",
          "scene '" + std::string(scene.id) + "' expects " +
              std::string(to_string(scene.expected_process)) +
              " but the engine derived " +
              std::string(to_string(d.required_process)),
          describe_scenario(s), options.seed, 0});
      report_to_flight(report.violations.back());
    }
    check_scenario(s, options.seed, 0, report);
    if (full()) return report;
  }

  // Seeded random walks.
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    LEXFOR_OBS_COUNTER_ADD("check.trials", 1);
    ++report.trials;
    // Each trial owns a counter-derived stream, so trial k is the same
    // walk no matter how many trials run or in what order.
    Rng rng = Rng::sub_stream(options.seed, trial);
    ScenarioGen gen(rng);
    legal::Scenario s =
        gen.generate("fuzz-" + std::to_string(options.seed) + "-" +
                     std::to_string(trial));
    check_scenario(s, options.seed, trial, report);
    if (full()) return report;
    for (std::size_t step = 0; step < options.walk_steps; ++step) {
      const legal::ScenarioFingerprint before = legal::fingerprint(s);
      const bool changed = gen.mutate(s);
      if (changed && legal::fingerprint(s) == before) {
        report.violations.push_back(Violation{
            "fingerprint-sensitivity",
            "a doctrine-field mutation left the canonical fingerprint "
            "unchanged (field not serialized?)",
            describe_scenario(s), options.seed, trial});
        report_to_flight(report.violations.back());
      }
      ++report.comparisons;
      check_scenario(s, options.seed, trial, report);
      if (full()) return report;
    }
  }
  return report;
}

CheckReport run_differential(const CheckOptions& options) {
  return DifferentialChecker{}.run(options);
}

}  // namespace lexfor::check
