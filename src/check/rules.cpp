#include "check/rules.h"

#include <sstream>

#include "check/scenario_gen.h"
#include "legal/scenario_library.h"
#include "legal/suppression.h"
#include "lint/linter.h"
#include "lint/passes.h"
#include "obs/obs.h"

namespace lexfor::check {
namespace {

using legal::ProcessKind;
using legal::Scenario;

constexpr int rank(ProcessKind k) noexcept { return static_cast<int>(k); }

constexpr ProcessKind kAllProcesses[] = {
    ProcessKind::kNone, ProcessKind::kSubpoena, ProcessKind::kCourtOrder,
    ProcessKind::kSearchWarrant, ProcessKind::kWiretapOrder};

void add_violation(CheckReport& report, std::string_view rule,
                   std::string detail, const Scenario& s) {
  LEXFOR_OBS_COUNTER_ADD("check.violations", 1);
  // seed/trial are stamped by run_rules once it knows them.
  report.violations.push_back(
      Violation{std::string(rule), std::move(detail), describe_scenario(s)});
  report_to_flight(report.violations.back());
}

// The minimum process the engine derives for `s`.
ProcessKind required_for(const Scenario& s, const legal::BatchEvaluator& eval) {
  return eval.evaluate(s).required_process;
}

}  // namespace

void ProcessMonotonicityRule::check(const Scenario& base,
                                    const legal::BatchEvaluator& eval,
                                    Rng& /*rng*/, CheckReport& report) const {
  const legal::Determination d = eval.evaluate(base);

  // Suppression layer: admissibility is monotone in the instrument held.
  bool prev_suppressed = true;
  for (const ProcessKind held : kAllProcesses) {
    legal::ProvenanceGraph graph;
    legal::AcquisitionRecord rec;
    rec.id = EvidenceId{1};
    rec.description = base.name;
    rec.required = d.required_process;
    rec.held = held;
    (void)graph.add(rec);
    const bool suppressed =
        legal::analyze_suppression(graph).is_suppressed(EvidenceId{1});
    ++report.comparisons;
    if (suppressed && !prev_suppressed) {
      std::ostringstream os;
      os << "upgrading the instrument to " << to_string(held)
         << " got evidence suppressed that a weaker instrument kept "
            "admissible (required "
         << to_string(d.required_process) << ")";
      add_violation(report, name(), os.str(), base);
    }
    prev_suppressed = suppressed;
  }

  // Lint layer: the missing-process diagnostic is antitone in the
  // intended instrument — once an authority satisfies the engine, every
  // stronger authority does too.
  bool prev_missing = true;
  for (const ProcessKind authority : kAllProcesses) {
    const lint::LintReport lint_report =
        lint::PlanLinter{}.lint(single_step_plan(base, authority));
    const bool missing = lint_report.has(lint::kRuleMissingProcess);
    ++report.comparisons;
    if (missing && !prev_missing) {
      std::ostringstream os;
      os << "the linter flagged missing-process under a "
         << to_string(authority)
         << " but accepted a weaker instrument (required "
         << to_string(d.required_process) << ")";
      add_violation(report, name(), os.str(), base);
    }
    prev_missing = missing;
  }
}

void ConsentMonotonicityRule::check(const Scenario& base,
                                    const legal::BatchEvaluator& eval,
                                    Rng& /*rng*/, CheckReport& report) const {
  Scenario no_consent = base;
  no_consent.consent = legal::ConsentKind::kNone;
  no_consent.consent_revoked = false;
  const ProcessKind baseline = required_for(no_consent, eval);

  for (std::uint8_t c = 0; c < 10; ++c) {
    Scenario consented = no_consent;
    consented.consent = static_cast<legal::ConsentKind>(c);
    const ProcessKind with_consent = required_for(consented, eval);
    ++report.comparisons;
    if (rank(with_consent) > rank(baseline)) {
      std::ostringstream os;
      os << "adding " << to_string(consented.consent)
         << " RAISED the required process from " << to_string(baseline)
         << " to " << to_string(with_consent);
      add_violation(report, name(), os.str(), consented);
    }
  }
}

void ExigencyMonotonicityRule::check(const Scenario& base,
                                     const legal::BatchEvaluator& eval,
                                     Rng& /*rng*/, CheckReport& report) const {
  Scenario calm = base;
  calm.exigent_circumstances = false;
  Scenario exigent = base;
  exigent.exigent_circumstances = true;
  const ProcessKind without = required_for(calm, eval);
  const ProcessKind with = required_for(exigent, eval);
  ++report.comparisons;
  if (rank(with) > rank(without)) {
    std::ostringstream os;
    os << "exigent circumstances RAISED the required process from "
       << to_string(without) << " to " << to_string(with);
    add_violation(report, name(), os.str(), exigent);
  }
}

void ExposureMonotonicityRule::check(const Scenario& base,
                                     const legal::BatchEvaluator& eval,
                                     Rng& /*rng*/, CheckReport& report) const {
  Scenario kept_private = base;
  kept_private.knowingly_exposed_to_public = false;
  Scenario exposed = base;
  exposed.knowingly_exposed_to_public = true;
  const ProcessKind without = required_for(kept_private, eval);
  const ProcessKind with = required_for(exposed, eval);
  ++report.comparisons;
  if (rank(with) > rank(without)) {
    std::ostringstream os;
    os << "public exposure RAISED the required process from "
       << to_string(without) << " to " << to_string(with);
    add_violation(report, name(), os.str(), exposed);
  }
}

void TaintMonotonicityRule::check(const Scenario& base,
                                  const legal::BatchEvaluator& eval, Rng& rng,
                                  CheckReport& report) const {
  const auto day = [](double d) { return SimTime::from_sec(d * 86400.0); };

  // A step that is always tainted: a warrantless real-time content
  // interception (Title III demands a wiretap order; no authority is
  // planned).
  const Scenario poison = Scenario{}
                              .named("poison: warrantless wiretap")
                              .by(legal::ActorKind::kLawEnforcement)
                              .acquiring(legal::DataKind::kContent)
                              .located(legal::DataState::kInTransit)
                              .when(legal::Timing::kRealTime);
  // A step that is never tainted on its own: `base` sanitized so it
  // needs no process (publicly exposed, accessible, no statute bites).
  Scenario lawful = base;
  lawful.state = legal::DataState::kPublicVenue;
  lawful.timing = legal::Timing::kStored;
  lawful.provider = legal::ProviderClass::kNotAProvider;
  lawful.knowingly_exposed_to_public = true;
  lawful.readily_accessible_to_public = true;

  lint::InvestigationPlan plan("taint-monotonicity walk",
                               legal::CrimeCategory::kGeneral);
  std::vector<PlanStepId> ids;
  ids.push_back(plan.plan_acquisition("poison", poison, day(0)).id());
  for (std::size_t k = 1; k < 4; ++k) {
    Scenario step = lawful;
    step.name = "lawful-" + std::to_string(k);
    auto builder =
        plan.plan_acquisition(step.name, step, day(static_cast<double>(k)));
    // Random derivation edges into a subset of the earlier steps.
    std::vector<PlanStepId> parents;
    for (std::size_t j = 0; j < k; ++j) {
      if (rng.bernoulli(0.5)) parents.push_back(ids[j]);
    }
    builder.derived(std::move(parents));
    ids.push_back(builder.id());
  }

  const auto taint_bits = [&](const lint::PlanContext& ctx) {
    std::vector<bool> bits;
    bits.reserve(ids.size());
    for (const PlanStepId id : ids) {
      const lint::StepAnalysis* step = ctx.find(id);
      bits.push_back(step != nullptr && step->tainted);
    }
    return bits;
  };

  const std::vector<bool> before = taint_bits(lint::PlanContext(plan, eval));

  // Add one derivation edge from the tainted root into a random later
  // step; the static closure must be pointwise monotone in the edge set.
  const std::size_t target = 1 + rng.uniform(ids.size() - 1);
  std::vector<PlanStepId> parents =
      plan.steps()[target].derived_from;
  parents.push_back(ids[0]);
  lint::InvestigationPlan::StepBuilder(plan, target)
      .derived(std::move(parents));

  const std::vector<bool> after = taint_bits(lint::PlanContext(plan, eval));

  ++report.comparisons;
  if (!before[0]) {
    add_violation(report, name(),
                  "the warrantless-wiretap root step was not tainted", poison);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (before[i] && !after[i]) {
      std::ostringstream os;
      os << "adding a tainted derivation edge into step " << target
         << " UN-tainted step " << i;
      add_violation(report, name(), os.str(), base);
    }
  }
}

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<ProcessMonotonicityRule>());
  rules.push_back(std::make_unique<ConsentMonotonicityRule>());
  rules.push_back(std::make_unique<ExigencyMonotonicityRule>());
  rules.push_back(std::make_unique<ExposureMonotonicityRule>());
  rules.push_back(std::make_unique<TaintMonotonicityRule>());
  return rules;
}

CheckReport run_rules(const std::vector<std::unique_ptr<Rule>>& rules,
                      const CheckOptions& options) {
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "check", "rules",
                  "trials=" + std::to_string(options.trials),
                  obs::no_sim_time());
  const legal::BatchEvaluator eval(legal::BatchOptions{
      .threads = 1,
      .cache_capacity = 1 << 15,
      .cache_shards = 8,
      .use_shared_cache = false});
  CheckReport report;

  const auto full = [&] {
    return options.max_violations != 0 &&
           report.violations.size() >= options.max_violations;
  };
  const auto sweep = [&](const Scenario& base, Rng& rng, std::size_t trial) {
    ++report.scenarios_checked;
    LEXFOR_OBS_COUNTER_ADD("check.scenarios", 1);
    for (const auto& rule : rules) {
      const std::size_t had = report.violations.size();
      LEXFOR_OBS_COUNTER_ADD("check.rule_checks", 1);
      rule->check(base, eval, rng, report);
      for (std::size_t i = had; i < report.violations.size(); ++i) {
        report.violations[i].seed = options.seed;
        report.violations[i].trial = trial;
      }
    }
  };

  // Library corpus: each curated scene, with a rule-private stream
  // offset far past the trial streams.
  std::size_t scene_index = 0;
  for (const auto& scene : legal::library::scenes()) {
    Rng rng = Rng::sub_stream(options.seed, (1ULL << 32) + scene_index++);
    sweep(scene.build(), rng, 0);
    if (full()) return report;
  }

  // Seeded random scenarios — the same (seed, trial) streams the
  // differential checker walks, so a failing trial replays in either.
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    ++report.trials;
    LEXFOR_OBS_COUNTER_ADD("check.trials", 1);
    Rng rng = Rng::sub_stream(options.seed, trial);
    ScenarioGen gen(rng);
    const Scenario base = gen.generate(
        "rules-" + std::to_string(options.seed) + "-" + std::to_string(trial));
    sweep(base, rng, trial);
    if (full()) return report;
  }
  return report;
}

CheckReport run_rules(const CheckOptions& options) {
  return run_rules(default_rules(), options);
}

CheckReport run_all(const CheckOptions& options) {
  CheckReport report = run_differential(options);
  CheckReport rules_report = run_rules(options);
  report.merge(rules_report);
  return report;
}

}  // namespace lexfor::check
