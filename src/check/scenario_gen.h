// Deterministic random-walk generation of legal::Scenario values.
//
// The differential checker and the metamorphic rules need scenarios
// drawn from the WHOLE doctrine space, not just the curated library:
// every enum member, every exposure flag, jurisdictions both known and
// unknown to the database.  ScenarioGen samples that space from a
// seeded util::Rng, so every generated scenario is reproducible from
// (seed, trial, step) alone, and mutate() takes one random-walk step by
// re-sampling a single field — the move the metamorphic rules perturb
// around.
//
// describe_scenario() renders any scenario as a scene-table-style row
// (only non-default fields), which is how the checker prints failures:
// the row is simultaneously the repro recipe and a candidate new
// LEXFOR_SCENE_LIST entry.

#pragma once

#include <string>

#include "legal/scenario.h"
#include "util/rng.h"

namespace lexfor::check {

class ScenarioGen {
 public:
  explicit ScenarioGen(Rng& rng) : rng_(rng) {}

  // A fresh scenario with every field sampled uniformly from its valid
  // range (plus a sprinkling of out-of-database jurisdiction codes,
  // which the engine must treat as the federal default).
  [[nodiscard]] legal::Scenario generate(std::string name);

  // One random-walk step: re-samples exactly one field.  Returns true
  // when the chosen field actually changed value (callers use this to
  // decide whether the canonical fingerprint must differ).
  bool mutate(legal::Scenario& s);

  // The number of distinct mutable field slots mutate() picks from.
  [[nodiscard]] static constexpr std::size_t field_count() noexcept {
    return 27;
  }

 private:
  Rng& rng_;
};

// Scene-table-style rendering of a scenario: the fluent-builder chain
// that reproduces it, listing only fields that differ from the
// default-constructed Scenario.
[[nodiscard]] std::string describe_scenario(const legal::Scenario& s);

}  // namespace lexfor::check
