#include "check/scenario_gen.h"

#include <array>
#include <sstream>

namespace lexfor::check {
namespace {

using legal::ActorKind;
using legal::ConsentKind;
using legal::DataKind;
using legal::DataState;
using legal::ProviderClass;
using legal::Scenario;
using legal::Timing;

// Jurisdiction pool: the federal baseline, all-party states, one-party
// states, and codes absent from the database (which consent_regime maps
// to the one-party default — the checker must see that path too).
constexpr std::array<const char*, 10> kJurisdictions = {
    "US", "CA", "MD", "WA", "FL", "NY", "TX", "OH", "XX", "ZZ"};

template <typename E>
E pick_enum(Rng& rng, std::uint64_t member_count) {
  return static_cast<E>(rng.uniform(member_count));
}

}  // namespace

Scenario ScenarioGen::generate(std::string name) {
  Scenario s;
  s.name = std::move(name);
  s.actor = pick_enum<ActorKind>(rng_, 4);
  s.acting_under_color_of_law = rng_.bernoulli(0.25);
  s.data = pick_enum<DataKind>(rng_, 4);
  s.state = pick_enum<DataState>(rng_, 4);
  s.timing = pick_enum<Timing>(rng_, 2);
  // Exposure flags lean false so the REP-surviving heartland stays well
  // represented; each flag still flips often enough to hit every branch
  // thousands of times over a 10k-trial sweep.
  s.knowingly_exposed_to_public = rng_.bernoulli(0.2);
  s.shared_with_third_party = rng_.bernoulli(0.2);
  s.delivered_to_recipient = rng_.bernoulli(0.2);
  s.inside_home = rng_.bernoulli(0.2);
  s.via_sense_enhancing_tech = rng_.bernoulli(0.2);
  s.tech_in_general_public_use = rng_.bernoulli(0.2);
  s.readily_accessible_to_public = rng_.bernoulli(0.2);
  s.encrypted = rng_.bernoulli(0.2);
  s.provider = pick_enum<ProviderClass>(rng_, 4);
  s.message_opened_by_recipient = rng_.bernoulli(0.25);
  s.consent = pick_enum<ConsentKind>(rng_, 10);
  s.consent_revoked = rng_.bernoulli(0.15);
  s.target_area_password_protected = rng_.bernoulli(0.2);
  s.is_victim_system = rng_.bernoulli(0.2);
  s.targets_attacker_system = rng_.bernoulli(0.2);
  s.exigent_circumstances = rng_.bernoulli(0.15);
  s.in_plain_view = rng_.bernoulli(0.15);
  s.target_on_probation = rng_.bernoulli(0.15);
  s.emergency_pen_trap = rng_.bernoulli(0.15);
  s.provider_self_protection = rng_.bernoulli(0.15);
  s.jurisdiction = kJurisdictions[rng_.uniform(kJurisdictions.size())];
  s.device_lawfully_in_custody = rng_.bernoulli(0.2);
  s.contents_previously_lawfully_acquired = rng_.bernoulli(0.15);
  s.credentials_lawfully_obtained = rng_.bernoulli(0.2);
  s.target_arrested = rng_.bernoulli(0.2);
  return s;
}

bool ScenarioGen::mutate(Scenario& s) {
  const auto flip = [&](bool& b) {
    const bool next = rng_.bernoulli(0.5);
    const bool changed = next != b;
    b = next;
    return changed;
  };
  switch (rng_.uniform(field_count())) {
    case 0: {
      const auto next = pick_enum<ActorKind>(rng_, 4);
      const bool changed = next != s.actor;
      s.actor = next;
      return changed;
    }
    case 1: return flip(s.acting_under_color_of_law);
    case 2: {
      const auto next = pick_enum<DataKind>(rng_, 4);
      const bool changed = next != s.data;
      s.data = next;
      return changed;
    }
    case 3: {
      const auto next = pick_enum<DataState>(rng_, 4);
      const bool changed = next != s.state;
      s.state = next;
      return changed;
    }
    case 4: {
      const auto next = pick_enum<Timing>(rng_, 2);
      const bool changed = next != s.timing;
      s.timing = next;
      return changed;
    }
    case 5: return flip(s.knowingly_exposed_to_public);
    case 6: return flip(s.shared_with_third_party);
    case 7: return flip(s.delivered_to_recipient);
    case 8: return flip(s.inside_home);
    case 9: return flip(s.via_sense_enhancing_tech);
    case 10: return flip(s.tech_in_general_public_use);
    case 11: return flip(s.readily_accessible_to_public);
    case 12: return flip(s.encrypted);
    case 13: {
      const auto next = pick_enum<ProviderClass>(rng_, 4);
      const bool changed = next != s.provider;
      s.provider = next;
      return changed;
    }
    case 14: return flip(s.message_opened_by_recipient);
    case 15: {
      const auto next = pick_enum<ConsentKind>(rng_, 10);
      const bool changed = next != s.consent;
      s.consent = next;
      return changed;
    }
    case 16: return flip(s.consent_revoked);
    case 17: return flip(s.target_area_password_protected);
    case 18: return flip(s.is_victim_system);
    case 19: return flip(s.targets_attacker_system);
    case 20: return flip(s.exigent_circumstances);
    case 21: return flip(s.in_plain_view);
    case 22: return flip(s.target_on_probation);
    case 23: return flip(s.emergency_pen_trap);
    case 24: return flip(s.provider_self_protection);
    case 25: {
      const std::string next =
          kJurisdictions[rng_.uniform(kJurisdictions.size())];
      const bool changed = next != s.jurisdiction;
      s.jurisdiction = next;
      return changed;
    }
    default: return flip(s.target_arrested) | flip(s.credentials_lawfully_obtained);
  }
}

std::string describe_scenario(const Scenario& s) {
  const Scenario def;
  std::ostringstream os;
  os << "Scenario{}.named(\"" << s.name << "\")";
  if (s.actor != def.actor) os << ".by(ActorKind::" << to_string(s.actor) << ")";
  if (s.acting_under_color_of_law) os << ".under_color_of_law()";
  if (s.data != def.data) os << ".acquiring(" << to_string(s.data) << ")";
  if (s.state != def.state) os << ".located(" << to_string(s.state) << ")";
  if (s.timing != def.timing) os << ".when(" << to_string(s.timing) << ")";
  if (s.knowingly_exposed_to_public) os << ".exposed_publicly()";
  if (s.shared_with_third_party) os << ".shared()";
  if (s.delivered_to_recipient) os << ".delivered()";
  if (s.inside_home) os << ".in_home()";
  if (s.via_sense_enhancing_tech) os << ".sense_enhancing()";
  if (s.tech_in_general_public_use) os << ".general_public_use()";
  if (s.readily_accessible_to_public) os << ".publicly_accessible()";
  if (s.encrypted) os << ".with_encryption()";
  if (s.provider != def.provider) {
    os << ".at_provider(" << to_string(s.provider) << ")";
  }
  if (s.message_opened_by_recipient) os << ".opened()";
  if (s.consent != def.consent) {
    os << ".with_consent(" << to_string(s.consent) << ")";
  }
  if (s.consent_revoked) os << ".revoked()";
  if (s.target_area_password_protected) os << ".password_protected()";
  if (s.is_victim_system) os << ".on_victim_system()";
  if (s.targets_attacker_system) os << ".reaching_attacker()";
  if (s.exigent_circumstances) os << ".exigent()";
  if (s.in_plain_view) os << ".plain_view()";
  if (s.target_on_probation) os << ".probationer()";
  if (s.emergency_pen_trap) os << ".pen_trap_emergency()";
  if (s.provider_self_protection) os << ".provider_protecting()";
  if (s.jurisdiction != def.jurisdiction) {
    os << ".in_jurisdiction(\"" << s.jurisdiction << "\")";
  }
  if (s.device_lawfully_in_custody) os << ".device_in_custody()";
  if (s.contents_previously_lawfully_acquired) os << ".previously_acquired()";
  if (s.credentials_lawfully_obtained) os << ".with_credentials()";
  if (s.target_arrested) os << ".arrested()";
  return os.str();
}

}  // namespace lexfor::check
