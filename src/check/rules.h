// Metamorphic invariant rules over the doctrine space.
//
// The differential checker (differential.h) asks whether the three
// doctrine encodings agree on one scenario; the rules here ask whether
// each encoding respects the LATTICE STRUCTURE of the doctrine across
// related scenarios.  The paper's regimes compose monotonically — an
// exception can only excuse process, a stronger instrument can only
// satisfy more requirements, a tainted parent can only taint — so for
// any scenario s and its mutant s':
//
//   process-monotonicity  admissibility is monotone in the instrument
//                         held: once evidence survives with instrument
//                         h, it survives with any stronger one, in both
//                         the suppression auditor and the linter's
//                         missing-process pass.
//   consent-monotonicity  adding consent (any flavor, unrevoked) never
//                         RAISES the required process relative to the
//                         same scenario with no consent.
//   exigency-monotonicity exigent circumstances never raise the
//                         required process.
//   exposure-monotonicity knowingly exposing the data to the public
//                         never raises the required process (Katz: what
//                         one exposes to the public is unprotected).
//   taint-monotonicity    adding a derivation edge from a tainted step
//                         never UN-taints any step: the linter's static
//                         closure is pointwise monotone in the edge set.
//
// Each rule is a check::Rule; default_rules() returns the registry and
// run_rules() sweeps it over seeded random scenarios plus every library
// scene.  A violation here means an encoding disagrees with the
// doctrine's own algebra — a bug no single-scenario test can name.

#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "check/differential.h"
#include "legal/batch.h"
#include "legal/scenario.h"
#include "util/rng.h"

namespace lexfor::check {

// One metamorphic invariant.  Rules are stateless; check() derives the
// mutant(s) of `base` itself and appends any violations to `report`.
class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual void check(const legal::Scenario& base,
                     const legal::BatchEvaluator& eval, Rng& rng,
                     CheckReport& report) const = 0;
};

class ProcessMonotonicityRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "process-monotonicity";
  }
  void check(const legal::Scenario& base, const legal::BatchEvaluator& eval,
             Rng& rng, CheckReport& report) const override;
};

class ConsentMonotonicityRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "consent-monotonicity";
  }
  void check(const legal::Scenario& base, const legal::BatchEvaluator& eval,
             Rng& rng, CheckReport& report) const override;
};

class ExigencyMonotonicityRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "exigency-monotonicity";
  }
  void check(const legal::Scenario& base, const legal::BatchEvaluator& eval,
             Rng& rng, CheckReport& report) const override;
};

class ExposureMonotonicityRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "exposure-monotonicity";
  }
  void check(const legal::Scenario& base, const legal::BatchEvaluator& eval,
             Rng& rng, CheckReport& report) const override;
};

class TaintMonotonicityRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "taint-monotonicity";
  }
  void check(const legal::Scenario& base, const legal::BatchEvaluator& eval,
             Rng& rng, CheckReport& report) const override;
};

// The built-in registry, in documentation order.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> default_rules();

// Sweeps `rules` over every library scene plus options.trials seeded
// random scenarios (same (seed, trial) streams as the differential
// checker, so a reported trial replays identically in either harness).
[[nodiscard]] CheckReport run_rules(
    const std::vector<std::unique_ptr<Rule>>& rules,
    const CheckOptions& options);
[[nodiscard]] CheckReport run_rules(const CheckOptions& options);

// The whole harness: differential cross-check + metamorphic rules,
// merged into one report.
[[nodiscard]] CheckReport run_all(const CheckOptions& options);

}  // namespace lexfor::check
