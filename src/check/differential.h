// Differential doctrine analysis: N-version cross-checking of the three
// independent encodings of the paper's compliance doctrine.
//
// The repo answers "does this acquisition need process?" three ways:
//
//   1. the runtime ComplianceEngine (legal/engine.h), reached both
//      serially and through the BatchEvaluator's verdict cache,
//   2. the static PlanLinter (lint/linter.h), which evaluates planned
//      acquisitions and diagnoses missing process / taint, and
//   3. the suppression auditor (legal/suppression.h), which decides
//      after the fact whether the evidence survives.
//
// Each was written against the paper, not against the others, so they
// form an N-version oracle: on any scenario the doctrine space admits,
// all three must agree.  DifferentialChecker walks seeded random
// scenarios (plus every library scene) and cross-checks, per scenario:
//
//   - engine determinism and verdict-cache coherence (serial evaluate ==
//     cached evaluate, field for field),
//   - canonical fingerprint stability (copies collide, doctrine-field
//     mutations don't),
//   - lint agreement: a single-step plan with no planned process is
//     flagged missing-process iff the engine demands process, and a plan
//     holding exactly the required instrument is never flagged,
//   - suppression agreement: held == nothing suppresses iff the engine
//     demands process; held == required (or stronger) always survives;
//     and a lawful child derived from the record is suppressed iff the
//     parent is — the same closure the linter computes statically.
//
// Failures print as a scene-table row (see scenario_gen.h) so a
// counterexample can be replayed or promoted into LEXFOR_SCENE_LIST.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "legal/batch.h"
#include "legal/scenario.h"
#include "lint/plan.h"

namespace lexfor::check {

struct CheckOptions {
  std::uint64_t seed = 0x1e9a1'f0c5ULL;
  // Number of fresh scenarios; each takes `walk_steps` additional
  // mutation steps, so the checked-scenario count is
  // trials * (1 + walk_steps).
  std::size_t trials = 10'000;
  std::size_t walk_steps = 3;
  // Stop after this many violations (0 = collect everything).
  std::size_t max_violations = 16;
};

struct Violation {
  std::string rule;          // which invariant broke, e.g. "lint-agreement"
  std::string detail;        // what disagreed, with both answers
  std::string scenario_row;  // describe_scenario() repro recipe
  std::uint64_t seed = 0;
  std::size_t trial = 0;

  [[nodiscard]] std::string to_string() const;
};

struct CheckReport {
  std::size_t trials = 0;
  std::size_t scenarios_checked = 0;
  std::size_t comparisons = 0;  // individual oracle-vs-oracle checks
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string summary() const;

  void merge(const CheckReport& other);
};

// Wraps `s` as a one-acquisition InvestigationPlan.  With
// `authority == kNone` the plan schedules no application (the team
// intends to proceed processless); otherwise it applies for exactly
// `authority` at day 0 with warrant-grade facts and executes at day 1,
// inside the validity window.
[[nodiscard]] lint::InvestigationPlan single_step_plan(
    const legal::Scenario& s, legal::ProcessKind authority);

class DifferentialChecker {
 public:
  // Evaluations run through a PRIVATE verdict cache so fuzz traffic
  // never evicts the process-wide shared cache entries.
  DifferentialChecker();

  // Cross-checks one scenario across all oracles; appends violations.
  void check_scenario(const legal::Scenario& s, std::uint64_t seed,
                      std::size_t trial, CheckReport& report) const;

  // The full sweep: every library scene (including its table-declared
  // expected verdict), then `options.trials` seeded random walks.
  [[nodiscard]] CheckReport run(const CheckOptions& options) const;

  [[nodiscard]] const legal::BatchEvaluator& evaluator() const noexcept {
    return evaluator_;
  }

 private:
  legal::BatchEvaluator evaluator_;
};

// Convenience entry point used by tests and tools.
[[nodiscard]] CheckReport run_differential(const CheckOptions& options);

// Routes one violation to the obs flight recorder (obs/flight.h): when
// the recorder is armed, writes a dump whose reason names the broken
// rule, so a fuzz failure leaves the recent trace + metrics on disk
// next to the printed counterexample.  No-op when the recorder is
// disarmed or observability is compiled out.  Called automatically by
// the checker/rules paths; exposed so tests and tools can route
// synthetic violations.
void report_to_flight(const Violation& v);

}  // namespace lexfor::check
